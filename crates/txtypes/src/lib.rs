//! Shared vocabulary types for the TxCache reproduction.
//!
//! This crate defines the small set of types that every other crate in the
//! workspace speaks:
//!
//! * [`Timestamp`] — a logical database commit timestamp. All versioning in the
//!   system (tuple visibility, cache-entry validity, pin sets) is expressed in
//!   terms of commit timestamps, exactly as in the paper (§4.1, §5.1).
//! * [`WallClock`] — simulated wall-clock time, used only to express staleness
//!   limits ("data from within the last 30 seconds") and to order pincushion
//!   entries. The mapping between the two is maintained by the database's
//!   commit log and by the pincushion.
//! * [`ValidityInterval`] — the half-open range of timestamps over which a
//!   query result or cached value is the current result (§4.1, §5.2).
//! * [`IntervalSet`] — a union of disjoint intervals; used for the *invalidity
//!   mask* the database accumulates from tuples that fail visibility checks
//!   (§5.2) and for validity bookkeeping in tests.
//! * [`InvalidationTag`] / [`TagSet`] — dual-granularity description of what
//!   parts of the database a query (and therefore a cached object) depends on
//!   (§4.2, §5.3).
//! * [`CacheKey`] — the serialized (function, arguments) identity of a
//!   cacheable call (§6.1).
//! * [`Staleness`] — a per-transaction staleness limit (§2.2).
//!
//! The types are deliberately free of any behaviour specific to the database,
//! the cache server, or the client library so that each of those components
//! can be tested in isolation.

#![forbid(unsafe_code)]

pub mod clock;
pub mod error;
pub mod interval;
pub mod interval_set;
pub mod key;
pub mod staleness;
pub mod tag;
pub mod timestamp;

pub use clock::SimClock;
pub use error::{Error, Result};
pub use interval::ValidityInterval;
pub use interval_set::IntervalSet;
pub use key::CacheKey;
pub use staleness::Staleness;
pub use tag::{InvalidationTag, TagSet};
pub use timestamp::{Timestamp, WallClock};
