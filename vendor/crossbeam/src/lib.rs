//! Offline subset of `crossbeam`.
//!
//! Provides `crossbeam::channel`: multi-producer multi-consumer channels
//! whose `Sender` and `Receiver` are both `Send + Sync + Clone`, matching the
//! semantics the invalidation fan-out relies on (std's mpsc `Receiver` is
//! neither `Sync` nor cloneable).

#![forbid(unsafe_code)]

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => f.write_str("receiving on a disconnected channel"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.available.wait(state).unwrap();
            }
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Drains currently pending messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }

        /// Returns the number of queued messages.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// Returns true if no messages are queued.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            while got.len() < 100 {
                got.push(rx.recv().unwrap());
            }
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
