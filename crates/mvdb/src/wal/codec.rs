//! Binary encoding of write-ahead-log records.
//!
//! Records reuse the `wire` crate's codec discipline: the same
//! length-prefixed, non-self-describing little-endian encoding the network
//! protocol uses ([`wire::Writer`] / [`wire::Reader`]), with one addition —
//! every record carries an FNV-1a checksum of its payload, so a torn or
//! bit-rotted tail is detected *before* it can replay as a partial
//! transaction:
//!
//! ```text
//! +----------------+------------------+---------------------+
//! | payload len u32| checksum u64     | payload (len bytes) |
//! +----------------+------------------+---------------------+
//! ```
//!
//! Decoding stops at the first frame that is incomplete, oversized, or
//! fails its checksum; everything before it is exactly the prefix of
//! records that were fully written. Commit payloads carry the stamped
//! operations *and* the transaction's invalidation tag set, so recovery can
//! rebuild both the version store and the invalidation horizon from the
//! same totally-ordered stream.

use txtypes::{Error, Result, TagSet, Timestamp, WallClock};
use wire::sim::{fnv1a, FNV_OFFSET};
use wire::{Reader, Writer};

use crate::schema::{ColumnDef, IndexDef, TableSchema};
use crate::value::{ColumnType, Value};

/// Upper bound on a single record's payload, mirroring
/// [`wire::MAX_FRAME_BYTES`]: a corrupt length prefix must not make
/// recovery attempt a gigabyte allocation.
pub const MAX_RECORD_BYTES: usize = 32 << 20;

/// Bytes of framing (`len` + `checksum`) preceding every record payload.
pub const RECORD_HEADER_BYTES: usize = 4 + 8;

const KIND_COMMIT: u8 = 1;
const KIND_CREATE_TABLE: u8 = 2;
const KIND_VACUUM_WATERMARK: u8 = 3;

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;

/// One durable operation inside a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A version created by the transaction (insert, or the new version of
    /// an update). `self_deleted` marks a version the same transaction also
    /// deleted (insert-then-delete in one transaction).
    Insert {
        /// Table the version belongs to.
        table: String,
        /// Logical row identity, stable across versions.
        row_id: u64,
        /// Column values of the version.
        values: Vec<Value>,
        /// The creating transaction also deleted it.
        self_deleted: bool,
    },
    /// A pre-existing version the transaction deleted or superseded. The
    /// target is identified by `(row_id, created_ts)` — slots are positional
    /// and do not survive recovery, but only the live tip of a row's version
    /// chain has no deletion stamp, so the pair is unambiguous.
    Delete {
        /// Table the version belongs to.
        table: String,
        /// Logical row identity.
        row_id: u64,
        /// Commit timestamp of the version being deleted.
        created_ts: Timestamp,
    },
}

/// One record in the write-ahead log. Appended under the commit sequencer,
/// so file order equals commit-timestamp order.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed read/write transaction (or a bulk load, which commits
    /// with no tags).
    Commit(WalCommit),
    /// A table creation.
    CreateTable(TableSchema),
    /// The vacuum watermark advanced; pins below it are refused, before and
    /// after recovery.
    VacuumWatermark(Timestamp),
}

/// The durable image of one committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct WalCommit {
    /// The commit timestamp the sequencer assigned.
    pub commit_ts: Timestamp,
    /// Wall-clock commit time (staleness bookkeeping in the rebuilt
    /// invalidation stream).
    pub committed_at: WallClock,
    /// The invalidation tag set published for this commit (already
    /// wildcard-collapsed), so recovery rebuilds the horizon exactly.
    pub tags: TagSet,
    /// The stamped operations, deletes and inserts.
    pub ops: Vec<WalOp>,
}

fn codec_err(what: &str, e: impl std::fmt::Display) -> Error {
    Error::Serialization(format!("wal {what}: {e}"))
}

pub(crate) fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_u64(*i as u64);
        }
        Value::Float(f) => {
            w.put_u8(2);
            w.put_u64(f.to_bits());
        }
        Value::Text(s) => {
            w.put_u8(3);
            w.put_str(s);
        }
        Value::Bool(b) => {
            w.put_u8(4);
            w.put_u8(u8::from(*b));
        }
    }
}

pub(crate) fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    let tag = r.get_u8().map_err(|e| codec_err("value tag", e))?;
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Int(r.get_u64().map_err(|e| codec_err("int", e))? as i64),
        2 => Value::Float(f64::from_bits(
            r.get_u64().map_err(|e| codec_err("float", e))?,
        )),
        3 => Value::Text(r.get_str().map_err(|e| codec_err("text", e))?),
        4 => Value::Bool(r.get_u8().map_err(|e| codec_err("bool", e))? != 0),
        other => return Err(codec_err("value tag", format!("unknown tag {other}"))),
    })
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 1,
        ColumnType::Float => 2,
        ColumnType::Text => 3,
        ColumnType::Bool => 4,
    }
}

fn column_type_of(tag: u8) -> Result<ColumnType> {
    Ok(match tag {
        1 => ColumnType::Int,
        2 => ColumnType::Float,
        3 => ColumnType::Text,
        4 => ColumnType::Bool,
        other => return Err(codec_err("column type", format!("unknown tag {other}"))),
    })
}

/// Encodes a table schema into an open writer (shared by `CreateTable`
/// records and snapshot files).
pub fn put_schema(w: &mut Writer, schema: &TableSchema) {
    w.put_str(&schema.name);
    w.put_u32(schema.columns.len() as u32);
    for col in &schema.columns {
        w.put_str(&col.name);
        w.put_u8(column_type_tag(col.ty));
    }
    w.put_u32(schema.indexes.len() as u32);
    for ix in &schema.indexes {
        w.put_str(&ix.name);
        w.put_str(&ix.column);
        w.put_u8(u8::from(ix.unique));
    }
}

/// Decodes a table schema written by [`put_schema`].
pub fn get_schema(r: &mut Reader<'_>) -> Result<TableSchema> {
    let name = r.get_str().map_err(|e| codec_err("table name", e))?;
    let columns = r.get_u32().map_err(|e| codec_err("column count", e))?;
    let mut schema = TableSchema {
        name,
        columns: Vec::with_capacity(columns as usize),
        indexes: Vec::new(),
    };
    for _ in 0..columns {
        let name = r.get_str().map_err(|e| codec_err("column name", e))?;
        let ty = column_type_of(r.get_u8().map_err(|e| codec_err("column type", e))?)?;
        schema.columns.push(ColumnDef { name, ty });
    }
    let indexes = r.get_u32().map_err(|e| codec_err("index count", e))?;
    for _ in 0..indexes {
        let name = r.get_str().map_err(|e| codec_err("index name", e))?;
        let column = r.get_str().map_err(|e| codec_err("index column", e))?;
        let unique = r.get_u8().map_err(|e| codec_err("index unique", e))? != 0;
        schema.indexes.push(IndexDef {
            name,
            column,
            unique,
        });
    }
    Ok(schema)
}

fn encode_payload(record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match record {
        WalRecord::Commit(c) => {
            w.put_u8(KIND_COMMIT);
            w.put_timestamp(c.commit_ts);
            w.put_wallclock(c.committed_at);
            w.put_tagset(&c.tags);
            w.put_u32(c.ops.len() as u32);
            for op in &c.ops {
                match op {
                    WalOp::Insert {
                        table,
                        row_id,
                        values,
                        self_deleted,
                    } => {
                        w.put_u8(OP_INSERT);
                        w.put_str(table);
                        w.put_u64(*row_id);
                        w.put_u8(u8::from(*self_deleted));
                        w.put_u32(values.len() as u32);
                        for v in values {
                            put_value(&mut w, v);
                        }
                    }
                    WalOp::Delete {
                        table,
                        row_id,
                        created_ts,
                    } => {
                        w.put_u8(OP_DELETE);
                        w.put_str(table);
                        w.put_u64(*row_id);
                        w.put_timestamp(*created_ts);
                    }
                }
            }
        }
        WalRecord::CreateTable(schema) => {
            w.put_u8(KIND_CREATE_TABLE);
            put_schema(&mut w, schema);
        }
        WalRecord::VacuumWatermark(ts) => {
            w.put_u8(KIND_VACUUM_WATERMARK);
            w.put_timestamp(*ts);
        }
    }
    w.into_vec()
}

/// FNV-1a digest of a byte slice, seeded from the shared offset basis.
#[must_use]
pub fn checksum_of(bytes: &[u8]) -> u64 {
    let mut digest = FNV_OFFSET;
    fnv1a(&mut digest, bytes);
    digest
}

/// Encodes a record into its on-disk frame: length, checksum, payload.
#[must_use]
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(record);
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum_of(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one record payload (the frame's body, after the checksum has
/// already been verified).
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(payload);
    let kind = r.get_u8().map_err(|e| codec_err("record kind", e))?;
    let record = match kind {
        KIND_COMMIT => {
            let commit_ts = r.get_timestamp().map_err(|e| codec_err("commit ts", e))?;
            let committed_at = r.get_wallclock().map_err(|e| codec_err("commit wall", e))?;
            let tags = r.get_tagset().map_err(|e| codec_err("tags", e))?;
            let op_count = r.get_u32().map_err(|e| codec_err("op count", e))?;
            let mut ops = Vec::with_capacity(op_count as usize);
            for _ in 0..op_count {
                let op = r.get_u8().map_err(|e| codec_err("op kind", e))?;
                match op {
                    OP_INSERT => {
                        let table = r.get_str().map_err(|e| codec_err("op table", e))?;
                        let row_id = r.get_u64().map_err(|e| codec_err("op row", e))?;
                        let self_deleted = r.get_u8().map_err(|e| codec_err("op flag", e))? != 0;
                        let n = r.get_u32().map_err(|e| codec_err("value count", e))?;
                        let mut values = Vec::with_capacity(n as usize);
                        for _ in 0..n {
                            values.push(get_value(&mut r)?);
                        }
                        ops.push(WalOp::Insert {
                            table,
                            row_id,
                            values,
                            self_deleted,
                        });
                    }
                    OP_DELETE => {
                        let table = r.get_str().map_err(|e| codec_err("op table", e))?;
                        let row_id = r.get_u64().map_err(|e| codec_err("op row", e))?;
                        let created_ts =
                            r.get_timestamp().map_err(|e| codec_err("op created", e))?;
                        ops.push(WalOp::Delete {
                            table,
                            row_id,
                            created_ts,
                        });
                    }
                    other => return Err(codec_err("op kind", format!("unknown op {other}"))),
                }
            }
            WalRecord::Commit(WalCommit {
                commit_ts,
                committed_at,
                tags,
                ops,
            })
        }
        KIND_CREATE_TABLE => WalRecord::CreateTable(get_schema(&mut r)?),
        KIND_VACUUM_WATERMARK => {
            WalRecord::VacuumWatermark(r.get_timestamp().map_err(|e| codec_err("watermark", e))?)
        }
        other => return Err(codec_err("record kind", format!("unknown kind {other}"))),
    };
    r.finish().map_err(|e| codec_err("trailing bytes", e))?;
    Ok(record)
}

/// The outcome of scanning a WAL byte buffer: every fully-written record,
/// plus the byte length of the valid prefix. Bytes past `valid_len` are a
/// torn tail (partial header, short payload, or checksum mismatch) and must
/// be truncated before the log is appended to again.
#[derive(Debug)]
pub struct WalScan {
    /// The decoded records of the valid prefix, in file (= commit) order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
}

/// Scans a WAL image, stopping at the first torn or corrupt frame. A decode
/// error *after* a checksum-valid frame is a format error, not a torn tail,
/// and is returned as `Err` — truncating there would silently drop durable
/// commits.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < RECORD_HEADER_BYTES {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD_BYTES {
            // A garbage length prefix: treat as a torn tail.
            break;
        }
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let Some(payload) = rest.get(RECORD_HEADER_BYTES..RECORD_HEADER_BYTES + len) else {
            break;
        };
        if checksum_of(payload) != checksum {
            break;
        }
        records.push(decode_payload(payload)?);
        offset += RECORD_HEADER_BYTES + len;
    }
    Ok(WalScan {
        records,
        valid_len: offset as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn sample_commit() -> WalRecord {
        WalRecord::Commit(WalCommit {
            commit_ts: Timestamp(42),
            committed_at: WallClock::from_secs(7),
            tags: [
                InvalidationTag::keyed("accounts", "id=3"),
                InvalidationTag::wildcard("audit"),
            ]
            .into_iter()
            .collect(),
            ops: vec![
                WalOp::Delete {
                    table: "accounts".into(),
                    row_id: 3,
                    created_ts: Timestamp(40),
                },
                WalOp::Insert {
                    table: "accounts".into(),
                    row_id: 3,
                    values: vec![
                        Value::Int(3),
                        Value::text("x"),
                        Value::Null,
                        Value::Float(1.5),
                        Value::Bool(true),
                    ],
                    self_deleted: false,
                },
            ],
        })
    }

    fn sample_schema() -> TableSchema {
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .column("note", ColumnType::Text)
            .unique_index("id")
            .index("note")
    }

    #[test]
    fn records_round_trip() {
        for record in [
            sample_commit(),
            WalRecord::CreateTable(sample_schema()),
            WalRecord::VacuumWatermark(Timestamp(9)),
        ] {
            let frame = encode_record(&record);
            let scan = scan_wal(&frame).unwrap();
            assert_eq!(scan.valid_len, frame.len() as u64);
            assert_eq!(scan.records, vec![record]);
        }
    }

    #[test]
    fn concatenated_records_scan_in_order() {
        let a = encode_record(&WalRecord::VacuumWatermark(Timestamp(1)));
        let b = encode_record(&sample_commit());
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let scan = scan_wal(&buf).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.valid_len, (a.len() + b.len()) as u64);
    }

    #[test]
    fn torn_tail_is_detected_at_every_offset() {
        let a = encode_record(&sample_commit());
        let b = encode_record(&WalRecord::VacuumWatermark(Timestamp(5)));
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        // Truncate anywhere inside the second record: exactly the first
        // record survives.
        for cut in a.len()..buf.len() {
            let scan = scan_wal(&buf[..cut]).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, a.len() as u64, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_checksum_stops_the_scan() {
        let a = encode_record(&WalRecord::VacuumWatermark(Timestamp(5)));
        let b = encode_record(&sample_commit());
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        // Flip one payload byte of the second record.
        let idx = a.len() + RECORD_HEADER_BYTES + 1;
        buf[idx] ^= 0xFF;
        let scan = scan_wal(&buf).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, a.len() as u64);
    }

    #[test]
    fn absurd_length_prefix_is_a_torn_tail_not_an_allocation() {
        let mut buf = encode_record(&WalRecord::VacuumWatermark(Timestamp(5)));
        let good = buf.len() as u64;
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        let scan = scan_wal(&buf).unwrap();
        assert_eq!(scan.valid_len, good);
    }

    #[test]
    fn schema_round_trips() {
        let schema = sample_schema();
        let mut w = Writer::new();
        put_schema(&mut w, &schema);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_schema(&mut r).unwrap(), schema);
        r.finish().unwrap();
    }
}
