//! A shared simulated clock.
//!
//! The evaluation harness drives experiments on a virtual clock so that runs
//! are deterministic and so that "30 seconds of staleness" does not require
//! 30 seconds of real time. Every component that needs wall-clock time — the
//! database's commit log, the pincushion's freshness checks, the cache's
//! staleness-based eviction, the workload generator's think times — reads the
//! same [`SimClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::timestamp::WallClock;

/// A cheaply cloneable handle to a monotonically advancing simulated clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    #[must_use]
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Creates a clock starting at the given instant.
    #[must_use]
    pub fn starting_at(at: WallClock) -> SimClock {
        let c = SimClock::new();
        c.micros.store(at.as_micros(), Ordering::SeqCst);
        c
    }

    /// Returns the current simulated time.
    #[must_use]
    pub fn now(&self) -> WallClock {
        WallClock(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `us` microseconds and returns the new time.
    pub fn advance_micros(&self, us: u64) -> WallClock {
        WallClock(self.micros.fetch_add(us, Ordering::SeqCst) + us)
    }

    /// Advances the clock by whole seconds and returns the new time.
    pub fn advance_secs(&self, secs: u64) -> WallClock {
        self.advance_micros(secs.saturating_mul(1_000_000))
    }

    /// Moves the clock forward to `at` if `at` is later than the current
    /// time; the clock never goes backwards.
    pub fn advance_to(&self, at: WallClock) {
        self.micros.fetch_max(at.as_micros(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), WallClock::ZERO);
        assert_eq!(c.advance_secs(2), WallClock::from_secs(2));
        assert_eq!(c.now(), WallClock::from_secs(2));
        c.advance_micros(500);
        assert_eq!(c.now().as_micros(), 2_000_500);
    }

    #[test]
    fn clones_share_state() {
        let c = SimClock::new();
        let d = c.clone();
        c.advance_secs(5);
        assert_eq!(d.now(), WallClock::from_secs(5));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::starting_at(WallClock::from_secs(10));
        c.advance_to(WallClock::from_secs(5));
        assert_eq!(c.now(), WallClock::from_secs(10));
        c.advance_to(WallClock::from_secs(15));
        assert_eq!(c.now(), WallClock::from_secs(15));
    }
}
