//! Index-assisted query fast-path microbenchmark and CI regression gate.
//!
//! Measures the planner's fast paths against the forced sequential-scan
//! reference on a RUBiS-shaped `items` table (unique `id`, secondary indexes
//! on `seller` and `category`):
//!
//! * **seq_topn**   — `ORDER BY id DESC LIMIT 10` with `force_seq_scan`:
//!   materialize every visible row, sort, truncate (the pre-fast-path plan);
//! * **index_topn** — the same query planned naturally (`IndexOrdered`):
//!   walk the `id` B-tree from the high end and stop after 10 visible rows;
//! * **endpoint_max** — `MAX(id)` as an `IndexEndpoint` probe;
//! * **count_eq**   — `COUNT(*) WHERE category = c` through the `IndexEq`
//!   probe plus the no-materialization COUNT loop;
//! * **in_list**    — `WHERE category IN (c, c+1, c+2)` as `IndexIn` probes.
//!
//! All legs produce answers with validity intervals identical to the
//! sequential scan (enforced by `tests/properties.rs`); this binary measures
//! the throughput side and doubles as the CI gate (`ci.sh --bench-smoke`).
//! The per-path rates are recorded as a [`SweepReport`] whose "thread"
//! column is the path index (1=seq_topn, 2=count_eq, 3=in_list,
//! 4=endpoint_max, 5=index_topn), so the standard baseline comparison gates
//! the tentpole `index_topn` leg. Independently of any baseline, the binary
//! fails if `index_topn` is not at least 3x faster than `seq_topn`.
//!
//! ```text
//! query_paths [--scale 0.01] [--requests N] [--quick] [--json PATH]
//!             [--baseline PATH] [--max-regress 0.2] [--min-speedup 3]
//! ```

use std::time::Instant;

use bench::{gate_failures, BenchArgs, SweepReport};
use mvdb::{
    AccessPath, Aggregate, ColumnType, Database, DbConfig, Predicate, SelectQuery, SortOrder,
    TableSchema, Value,
};
use txtypes::SimClock;

const CATEGORIES: i64 = 20;
const TOP_N: usize = 10;

/// Builds the items table at `scale` (1.0 = 800k rows, the default 0.01 =
/// 8k) with the RUBiS secondary indexes the fast paths probe.
fn build_db(scale: f64) -> (Database, usize) {
    let rows = ((scale * 800_000.0) as usize).max(1_000);
    let db = Database::new(DbConfig::default(), SimClock::new());
    db.create_table(
        TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("seller", ColumnType::Int)
            .column("category", ColumnType::Int)
            .column("price", ColumnType::Int)
            .unique_index("id")
            .index("seller")
            .index("category"),
    )
    .expect("create items");
    let data: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Int(i + 1),
                Value::Int(i % (rows as i64 / 10).max(1)),
                Value::Int(i % CATEGORIES),
                Value::Int((i * 7) % 1_000),
            ]
        })
        .collect();
    db.bulk_load("items", data).expect("bulk load items");
    (db, rows)
}

/// Runs `ops` iterations of `make_query`, one read-only transaction each,
/// and returns the rate in queries/s.
fn drive(db: &Database, label: &str, ops: usize, make_query: impl Fn(u64) -> SelectQuery) -> f64 {
    let started = Instant::now();
    for i in 0..ops as u64 {
        let q = make_query(i);
        let token = db.begin_ro(None).expect("begin ro");
        let result = db.query(token, &q).expect("query");
        db.commit(token).expect("commit ro");
        assert!(!result.rows.is_empty(), "every leg returns at least a row");
    }
    let rate = ops as f64 / started.elapsed().as_secs_f64().max(1e-9);
    println!("    {label:<12} {rate:>12.0} q/s ({ops} queries)");
    rate
}

fn topn_query() -> SelectQuery {
    SelectQuery::table("items")
        .select(vec!["id", "price"])
        .order_by("id", SortOrder::Desc)
        .limit(TOP_N)
}

fn main() {
    let args = BenchArgs::parse();
    let requests = args.requests.max(200);
    let (db, rows) = build_db(args.scale);
    println!(
        "query_paths: {rows} items, {CATEGORIES} categories, {requests} requests/leg \
         (seq leg {})",
        (requests / 20).max(50)
    );

    // The fast paths must actually be planned before measuring them —
    // otherwise the sweep silently compares seq scan against itself.
    let plan = |q: &SelectQuery| db.plan_for(q).expect("plan").access;
    assert!(matches!(
        plan(&topn_query()),
        AccessPath::IndexOrdered { .. }
    ));
    assert!(matches!(
        plan(&SelectQuery::table("items").aggregate(Aggregate::Max("id".into()))),
        AccessPath::IndexEndpoint { max: true, .. }
    ));
    assert!(matches!(
        plan(&SelectQuery::table("items").filter(Predicate::in_list("category", [1i64, 2, 3]))),
        AccessPath::IndexIn { .. }
    ));
    println!("  planner: index_ordered / index_endpoint / index_in confirmed\n  rates:");

    // The forced-scan leg materializes and sorts every visible row per
    // query; run fewer iterations so the full sweep stays fast.
    let seq_ops = (requests / 20).max(50);
    let seq_topn = drive(&db, "seq_topn", seq_ops, |_| topn_query().force_seq_scan());
    let count_eq = drive(&db, "count_eq", requests, |i| {
        SelectQuery::table("items")
            .filter(Predicate::eq("category", (i as i64) % CATEGORIES))
            .aggregate(Aggregate::Count)
    });
    let in_list = drive(&db, "in_list", requests, |i| {
        let c = (i as i64) % CATEGORIES;
        SelectQuery::table("items")
            .select(vec!["id"])
            .filter(Predicate::in_list(
                "category",
                [c, (c + 1) % CATEGORIES, (c + 2) % CATEGORIES],
            ))
    });
    let endpoint_max = drive(&db, "endpoint_max", requests, |_| {
        SelectQuery::table("items").aggregate(Aggregate::Max("id".into()))
    });
    let index_topn = drive(&db, "index_topn", requests, |_| topn_query());

    // Hard floor, independent of any baseline file: top-N pushdown must beat
    // the forced sequential scan by at least 3x (or --min-speedup if set
    // higher). O(limit) vs O(rows) should clear this by orders of magnitude.
    let floor = args.min_speedup.max(3.0);
    let speedup = index_topn / seq_topn.max(1e-9);
    println!("\n  top-N pushdown speedup over forced seq scan: {speedup:.1}x (floor {floor:.1}x)");
    if speedup < floor {
        eprintln!("BENCH GATE FAILED: index_topn is only {speedup:.2}x seq_topn (floor {floor}x)");
        std::process::exit(1);
    }

    // "Thread" indices are path indices; index 5 (index_topn) is what the
    // baseline regression gate compares.
    let report = SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: vec![1, 2, 3, 4, 5],
        txn_per_sec: vec![seq_topn, count_eq, in_list, endpoint_max, index_topn],
    };
    if let Some(path) = &args.json_out {
        std::fs::write(path, report.to_json()).expect("failed to write sweep JSON");
        println!("  sweep written to {path}");
    }
    // The speedup floor is enforced above (it is a path ratio, not a thread
    // scaling ratio), so only the baseline comparison runs here.
    let failures = gate_failures(
        &BenchArgs {
            min_speedup: 0.0,
            ..args
        },
        &report,
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
