//! End-to-end tests of the networked cache tier: a real `mvdb` commit's
//! invalidation batch travelling over TCP to `txcached` nodes, degraded
//! operation when nodes die, and (for `ci.sh --net-smoke`) a consistency run
//! against an externally started server.

use std::sync::Arc;

use bytes::Bytes;
use txcache_repro::cache_server::{
    CacheCluster, LookupOutcome, LookupRequest, NodeConfig, TxcachedServer,
};
use txcache_repro::mvdb::{
    ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::backend::{CacheBackend, RemoteCluster, RemoteOptions};
use txcache_repro::txcache::{TxCache, TxCacheConfig};
use txcache_repro::txtypes::{
    CacheKey, SimClock, Staleness, TagSet, Timestamp, ValidityInterval, WallClock,
};

fn spawn_servers(n: usize) -> (Vec<TxcachedServer>, Vec<String>) {
    let servers: Vec<TxcachedServer> = (0..n)
        .map(|i| {
            TxcachedServer::bind(
                "127.0.0.1:0",
                format!("txcached-{i}"),
                NodeConfig {
                    capacity_bytes: 4 << 20,
                    ..NodeConfig::default()
                },
            )
            .expect("bind loopback txcached")
        })
        .collect();
    let addrs = servers.iter().map(|s| s.local_addr().to_string()).collect();
    (servers, addrs)
}

/// A database commit's invalidation batch, pushed over TCP, must truncate
/// the validity interval of a still-valid entry on a remote node — the §4.2
/// contract, across a real server boundary.
#[test]
fn commit_invalidation_batch_truncates_remote_entry_validity() {
    let (_servers, addrs) = spawn_servers(2);
    let remote = RemoteCluster::connect(&addrs).unwrap();

    // A real database produces the invalidation: one row, then an update.
    let clock = SimClock::new();
    let db = Database::new(DbConfig::default(), clock.clone());
    db.create_table(
        TableSchema::new("items")
            .column("id", ColumnType::Int)
            .column("price", ColumnType::Int)
            .unique_index("id"),
    )
    .unwrap();
    db.bulk_load("items", vec![vec![Value::Int(1), Value::Int(10)]])
        .unwrap();
    let invalidations = db.subscribe_invalidations();
    let loaded_at = db.latest_timestamp();

    // Cache a still-valid (unbounded) entry that depends on the row.
    let key = CacheKey::new("get_item", "[1]");
    let tags: TagSet = [txtypes_tag("items", "id=1")].into_iter().collect();
    remote.insert(
        key.clone(),
        Bytes::from_static(b"price=10"),
        ValidityInterval::unbounded(loaded_at),
        tags,
        WallClock::ZERO,
    );

    // Commit an update that touches the row.
    let txn = db.begin_rw().unwrap();
    db.update(
        txn,
        "items",
        &Predicate::eq("id", 1i64),
        &[("price".to_string(), Value::Int(42))],
    )
    .unwrap();
    let commit_ts = db.commit(txn).unwrap();

    // Push the commit's invalidation batch to the remote nodes.
    let batch: Vec<_> = invalidations.try_iter().collect();
    assert!(!batch.is_empty(), "the commit must publish an invalidation");
    remote.apply_invalidations(&batch, db.latest_timestamp());

    // The remote entry's validity is now truncated exactly at the commit.
    match remote.lookup(&key, &LookupRequest::at(loaded_at)) {
        LookupOutcome::Hit {
            stored_validity, ..
        } => {
            assert_eq!(
                stored_validity.upper,
                Some(commit_ts),
                "validity must end at the update's commit timestamp"
            );
        }
        other => panic!("expected hit below the truncation point, got {other:?}"),
    }
    // At or after the commit the old value is gone.
    assert!(
        !remote.lookup(&key, &LookupRequest::at(commit_ts)).is_hit(),
        "the stale value must not be served at the commit timestamp"
    );
    let stats = remote.stats();
    assert_eq!(stats.invalidated_entries, 1);
    assert_eq!(remote.degraded_ops(), 0);
}

fn txtypes_tag(table: &str, key: &str) -> txcache_repro::txtypes::InvalidationTag {
    txcache_repro::txtypes::InvalidationTag::keyed(table, key)
}

/// Killing every cache node must degrade lookups to misses — never block or
/// crash the application path.
#[test]
fn dead_nodes_degrade_to_misses() {
    let (mut servers, addrs) = spawn_servers(2);
    let remote = RemoteCluster::connect(&addrs).unwrap();
    let key = CacheKey::new("f", "[1]");
    remote.insert(
        key.clone(),
        Bytes::from_static(b"v"),
        ValidityInterval::unbounded(Timestamp(1)),
        TagSet::new(),
        WallClock::ZERO,
    );
    assert!(remote
        .lookup(&key, &LookupRequest::at(Timestamp(1)))
        .is_hit());

    for server in &mut servers {
        server.shutdown();
    }
    drop(servers);

    // Lookups, inserts, and maintenance all absorb the failure.
    assert!(!remote
        .lookup(&key, &LookupRequest::at(Timestamp(1)))
        .is_hit());
    remote.insert(
        CacheKey::new("f", "[2]"),
        Bytes::from_static(b"w"),
        ValidityInterval::unbounded(Timestamp(1)),
        TagSet::new(),
        WallClock::ZERO,
    );
    remote.apply_invalidations(&[], Timestamp(5));
    remote.evict_stale(Timestamp(1));
    assert!(remote.degraded_ops() > 0, "degradation must be counted");
}

/// A healed connection must not let lost invalidations resurrect stale data:
/// on reconnect the node's still-valid entries are sealed at its current
/// invalidation horizon, so a later heartbeat cannot extend results whose
/// invalidation was dropped during the partition.
#[test]
fn healed_connection_seals_still_valid_entries() {
    let (_servers, addrs) = spawn_servers(1);
    let options = RemoteOptions {
        retry_cooldown: std::time::Duration::from_millis(50),
        ..RemoteOptions::default()
    };
    let remote = RemoteCluster::connect_with(&addrs, options).unwrap();

    let key = CacheKey::new("f", "[1]");
    let tags: TagSet = [txtypes_tag("items", "id=1")].into_iter().collect();
    remote.insert(
        key.clone(),
        Bytes::from_static(b"v"),
        ValidityInterval::unbounded(Timestamp(1)),
        tags.clone(),
        WallClock::ZERO,
    );
    remote.apply_invalidations(&[], Timestamp(10));
    assert!(remote
        .lookup(&key, &LookupRequest::at(Timestamp(10)))
        .is_hit());

    // Partition: the connection drops, and an invalidation matching the
    // entry is published while the node is unreachable — the batch is lost.
    remote.drop_connections();
    let lost = txcache_repro::mvdb::InvalidationMessage {
        timestamp: Timestamp(15),
        tags,
        committed_at: WallClock::ZERO,
    };
    remote.apply_invalidations(&[lost], Timestamp(15));
    assert!(remote.degraded_ops() > 0, "the lost batch must be counted");

    // Heal after the cooldown. The reconnect seals the entry at the node's
    // horizon (ts 10), so the later heartbeat must NOT extend it past the
    // lost invalidation at ts 15.
    std::thread::sleep(std::time::Duration::from_millis(80));
    remote.apply_invalidations(&[], Timestamp(30));
    assert_eq!(remote.reconnects(), 1, "the heal must be counted");
    assert!(
        !remote
            .lookup(&key, &LookupRequest::at(Timestamp(20)))
            .is_hit(),
        "a sealed entry must not be served past the lost invalidation"
    );
    // Below the seal point the entry is still good.
    assert!(remote
        .lookup(&key, &LookupRequest::at(Timestamp(5)))
        .is_hit());
    assert_eq!(remote.stats().sealed_entries, 1);
}

/// Pipelined puts: many inserts followed by a lookup on the same connection
/// stay correctly framed (acks are drained in order before the lookup).
#[test]
fn pipelined_puts_then_lookup_stay_in_sync() {
    let (_servers, addrs) = spawn_servers(1);
    let remote = RemoteCluster::connect(&addrs).unwrap();
    for i in 0..100 {
        remote.insert(
            CacheKey::new("f", format!("[{i}]")),
            Bytes::from(vec![i as u8; 32]),
            ValidityInterval::unbounded(Timestamp(1)),
            TagSet::new(),
            WallClock::ZERO,
        );
    }
    for i in 0..100 {
        assert!(
            remote
                .lookup(
                    &CacheKey::new("f", format!("[{i}]")),
                    &LookupRequest::at(Timestamp(1))
                )
                .is_hit(),
            "key {i} must be present after pipelined puts"
        );
    }
    let stats = remote.stats();
    assert_eq!(stats.insertions, 100);
    assert_eq!(stats.hits, 100);
    assert_eq!(remote.degraded_ops(), 0);
}

/// A batched lookup whose read set is only partly cached must return hits
/// and misses positionally aligned with the request, and a batched
/// write-back of exactly the missed positions must convert them all to
/// hits. Run against both backends: the in-process cluster (the default
/// `lookup_many`/`insert_many` loops) and the remote cluster (scatter-gather
/// `MultiGet`/`MultiPut` frames over TCP).
#[test]
fn multiget_partial_hits_line_up_on_both_backends() {
    fn exercise(backend: &dyn CacheBackend, label: &str) {
        let keys: Vec<CacheKey> = (0..16)
            .map(|i| CacheKey::new("f", format!("[{i}]")))
            .collect();
        // Pre-fill only the even positions.
        for (i, key) in keys.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
            backend.insert(
                key.clone(),
                Bytes::from(vec![i as u8; 8]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        let request = LookupRequest::at(Timestamp(1));
        let outcomes = backend.lookup_many(&keys, &request);
        assert_eq!(outcomes.len(), keys.len(), "{label}: one outcome per key");
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                LookupOutcome::Hit { value, .. } if i % 2 == 0 => {
                    assert_eq!(value.as_ref(), &vec![i as u8; 8][..], "{label}: key {i}");
                }
                LookupOutcome::Miss(_) if i % 2 == 1 => {}
                other => panic!("{label}: position {i} mismatched: {other:?}"),
            }
        }
        // Batch write-back of exactly the missed positions.
        let fills: Vec<_> = keys
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(i, key)| {
                (
                    key.clone(),
                    Bytes::from(vec![i as u8; 8]),
                    ValidityInterval::unbounded(Timestamp(1)),
                    TagSet::new(),
                )
            })
            .collect();
        backend.insert_many(fills, WallClock::ZERO);
        for (i, outcome) in backend.lookup_many(&keys, &request).iter().enumerate() {
            match outcome {
                LookupOutcome::Hit { value, .. } => {
                    assert_eq!(value.as_ref(), &vec![i as u8; 8][..], "{label}: key {i}");
                }
                other => panic!("{label}: key {i} must hit after write-back: {other:?}"),
            }
        }
    }

    let in_process = CacheCluster::new(2, 4 << 20);
    exercise(&in_process, "in-process");

    let (_servers, addrs) = spawn_servers(2);
    let remote = RemoteCluster::connect(&addrs).unwrap();
    exercise(&remote, "remote");
    assert_eq!(
        remote.degraded_ops(),
        0,
        "loopback batches must not degrade"
    );
    let stats = remote.stats();
    assert_eq!(stats.insertions, 16, "8 puts + one 8-entry MultiPut");
}

/// Runtime membership over real TCP: a node joins the ring mid-flight (the
/// ring epoch bumps and is announced to every server), still-valid entries
/// migrate to their new owners as they are read, and a node leaves again
/// with the survivors picking its keys back up — no client or server
/// restarts anywhere.
#[test]
fn runtime_join_and_leave_republish_the_ring() {
    let (servers, addrs) = spawn_servers(3);
    let options = RemoteOptions {
        replication: 2,
        ..RemoteOptions::default()
    };
    // Start with two of the three servers in the ring.
    let remote = RemoteCluster::connect_with(&addrs[..2], options).unwrap();
    assert_eq!(remote.ring_epoch(), 1);
    assert_eq!(remote.node_count(), 2);

    // Enough keys that the joined node is certain to become some key's
    // preferred replica (each node owns a healthy share of the ring).
    let keys: Vec<CacheKey> = (0..256)
        .map(|i| CacheKey::new("f", format!("[{i}]")))
        .collect();
    let request = LookupRequest::at(Timestamp(1));
    for (i, key) in keys.iter().enumerate() {
        remote.insert(
            key.clone(),
            Bytes::from(vec![i as u8; 16]),
            ValidityInterval::unbounded(Timestamp(1)),
            TagSet::new(),
            WallClock::ZERO,
        );
    }
    assert!(remote
        .lookup_many(&keys, &request)
        .iter()
        .all(|o| o.is_hit()));

    // Join the third node at runtime: epoch 2, announced everywhere.
    let epoch = remote.join_node(&addrs[2]).unwrap();
    assert_eq!(epoch, 2);
    assert_eq!(remote.node_count(), 3);
    for server in &servers {
        assert_eq!(
            server.ring_epoch(),
            2,
            "every node must learn the announced epoch"
        );
    }

    // Every key still hits: keys whose preferred replica moved to the cold
    // new node fall back to the sibling that held them — and get copied to
    // the new owner in the process.
    assert!(
        remote
            .lookup_many(&keys, &request)
            .iter()
            .all(|o| o.is_hit()),
        "old owners must keep serving moved keys after the join"
    );
    assert!(
        remote.migration_fills() > 0,
        "fallback hits must migrate entries to the joined node"
    );
    // Once migrated, the same batch is all first-hop hits — no new fills.
    let fills_after_migration = remote.migration_fills();
    assert!(remote
        .lookup_many(&keys, &request)
        .iter()
        .all(|o| o.is_hit()));
    assert_eq!(
        remote.migration_fills(),
        fills_after_migration,
        "a second pass must find every entry on its preferred replica"
    );

    // Leave: the ring shrinks back, epoch 3, and the survivors (every key
    // kept a replica on them) still serve everything.
    let epoch = remote.leave_node(&addrs[2]).unwrap();
    assert_eq!(epoch, 3);
    assert_eq!(remote.node_count(), 2);
    assert!(
        remote
            .lookup_many(&keys, &request)
            .iter()
            .all(|o| o.is_hit()),
        "the surviving replicas must serve every key after the leave"
    );
    assert_eq!(remote.degraded_ops(), 0, "no transport failures anywhere");
}

/// The typed stale-routing redirect over real TCP: after one client changes
/// the membership, a second client still routing (and stamping batches) on
/// the old ring epoch gets `WrongEpoch` redirects — counted, degraded to
/// misses, never silently misrouted — while unversioned single gets keep
/// working.
#[test]
fn stale_ring_clients_get_wrong_epoch_redirects() {
    let (_servers, addrs) = spawn_servers(3);
    let fresh = RemoteCluster::connect(&addrs[..2]).unwrap();
    let stale = RemoteCluster::connect(&addrs[..2]).unwrap();

    let keys: Vec<CacheKey> = (0..8)
        .map(|i| CacheKey::new("f", format!("[{i}]")))
        .collect();
    let request = LookupRequest::at(Timestamp(1));
    assert_eq!(stale.wrong_epoch_redirects(), 0);

    // The fresh client moves the membership to epoch 2 and announces it.
    fresh.join_node(&addrs[2]).unwrap();

    // The stale client's batches are stamped with epoch 1: refused with a
    // typed redirect, not served against the wrong ring.
    let outcomes = stale.lookup_many(&keys, &request);
    assert!(outcomes.iter().all(|o| !o.is_hit()));
    assert!(
        stale.wrong_epoch_redirects() > 0,
        "stale-stamped batches must draw WrongEpoch redirects"
    );
    assert_eq!(
        stale.reconnects(),
        0,
        "a redirect is not a node failure; connections must survive"
    );

    // Unversioned operations (single gets carry no epoch) still work on
    // the nodes the stale client knows about.
    stale.insert(
        keys[0].clone(),
        Bytes::from_static(b"v"),
        ValidityInterval::unbounded(Timestamp(1)),
        TagSet::new(),
        WallClock::ZERO,
    );
    assert!(stale.lookup(&keys[0], &request).is_hit());
}

/// The full client-library stack over TCP: a TxCache bank whose cache tier
/// is remote, checked for snapshot consistency. With `TXCACHED_ADDRS` set
/// (comma-separated), runs against those servers — this is what
/// `ci.sh --net-smoke` drives against an externally started `txcached`;
/// otherwise loopback servers are spawned in-process.
#[test]
fn remote_backend_consistency_smoke() {
    let (servers, addrs) = match std::env::var("TXCACHED_ADDRS") {
        Ok(list) if !list.trim().is_empty() => (
            Vec::new(),
            list.split(',').map(|s| s.trim().to_string()).collect(),
        ),
        _ => spawn_servers(2),
    };
    let remote: Arc<dyn CacheBackend> = Arc::new(RemoteCluster::connect(&addrs).unwrap());

    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )
    .unwrap();
    db.bulk_load(
        "accounts",
        vec![
            vec![Value::Int(1), Value::Int(60)],
            vec![Value::Int(2), Value::Int(40)],
        ],
    )
    .unwrap();
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = TxCache::with_backend(
        db,
        remote,
        pincushion,
        clock.clone(),
        TxCacheConfig::default(),
    );

    let balance = |tx: &mut txcache_repro::txcache::Transaction<'_>, account: i64| -> i64 {
        tx.cached("balance", &account, |tx| {
            let q = SelectQuery::table("accounts").filter(Predicate::eq("id", account));
            let r = tx.query(&q)?;
            Ok(r.get(0, "balance")?.as_int().unwrap_or(0))
        })
        .unwrap()
    };

    for round in 0..60 {
        // Transfer 5 back and forth.
        let amount = if round % 2 == 0 { 5i64 } else { -5i64 };
        let mut rw = txcache.begin_rw().unwrap();
        let q1 = SelectQuery::table("accounts").filter(Predicate::eq("id", 1i64));
        let a = rw
            .query(&q1)
            .unwrap()
            .get(0, "balance")
            .unwrap()
            .as_int()
            .unwrap();
        rw.update(
            "accounts",
            &Predicate::eq("id", 1i64),
            &[("balance".to_string(), Value::Int(a - amount))],
        )
        .unwrap();
        let q2 = SelectQuery::table("accounts").filter(Predicate::eq("id", 2i64));
        let b = rw
            .query(&q2)
            .unwrap()
            .get(0, "balance")
            .unwrap()
            .as_int()
            .unwrap();
        rw.update(
            "accounts",
            &Predicate::eq("id", 2i64),
            &[("balance".to_string(), Value::Int(b + amount))],
        )
        .unwrap();
        rw.commit().unwrap();
        clock.advance_micros(250_000);

        let mut ro = txcache.begin_ro(Staleness::seconds(30)).unwrap();
        let a = balance(&mut ro, 1);
        let b = balance(&mut ro, 2);
        ro.commit().unwrap();
        assert_eq!(a + b, 100, "round {round}: inconsistent snapshot over TCP");
    }
    let stats = txcache.stats();
    assert!(
        stats.cache_hits > 0,
        "the remote cache must serve hits: {stats:?}"
    );
    drop(servers);
}
