//! Concurrency stress tests for the sharded cache node.
//!
//! Parallel lookups, inserts, commit-ordered invalidation batches, and
//! staleness evictions hammer one node, then the node's structural
//! invariants are verified at quiescence:
//!
//! * versions of one key keep pairwise disjoint validity intervals,
//! * `used_bytes` matches the byte size of the live entries,
//! * the tag indexes hold exactly the still-valid entries,
//! * no still-valid entry survives a matching invalidation (§4.2), checked
//!   both against the node's retained history and by a final invalidation
//!   sweep followed by lookups above it.
//!
//! The workload is deterministic apart from thread interleaving: every
//! version chain is pre-planned with disjoint intervals, each key is
//! inserted by exactly one thread, and invalidation timestamps sit above
//! every chain so truncation can never create an overlap.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use txcache_repro::cache_server::{CacheCluster, CacheNode, LookupRequest, NodeConfig};
use txcache_repro::txtypes::{
    CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock,
};

const WORKERS: u64 = 4;
const KEYS_PER_WORKER: u64 = 48;
/// Width of each pre-planned bounded version.
const STEP: u64 = 10;
/// Bounded versions per key before the final still-valid one.
const VERSIONS: u64 = 4;
/// Invalidation timestamps start here — above every version chain, so a
/// truncation can never overlap a bounded version.
const INVALIDATION_BASE: u64 = 1_000;
const INVALIDATION_ROUNDS: u64 = 120;
const FINAL_SWEEP_TS: u64 = 50_000;

fn key(worker: u64, k: u64) -> CacheKey {
    CacheKey::new("stress", format!("[{worker}:{k}]"))
}

fn tag(worker: u64, k: u64) -> InvalidationTag {
    InvalidationTag::keyed("items", format!("id={worker}:{k}"))
}

fn tags(worker: u64, k: u64) -> TagSet {
    [tag(worker, k)].into_iter().collect()
}

/// Tiny deterministic generator so the test needs no RNG dependency.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn run_stress(node: &CacheNode) -> (u64, u64) {
    let insert_attempts = AtomicU64::new(0);
    let lookup_attempts = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // Worker threads: each owns its key range for inserts (so version
        // chains stay internally consistent) and looks up everyone's keys.
        for worker in 0..WORKERS {
            let insert_attempts = &insert_attempts;
            let lookup_attempts = &lookup_attempts;
            scope.spawn(move || {
                for k in 0..KEYS_PER_WORKER {
                    // The pre-planned chain: bounded versions in a
                    // deterministic shuffled order, then the still-valid one.
                    let mut order: Vec<u64> = (0..VERSIONS).collect();
                    let swap = (mix(worker * 1_000 + k) % VERSIONS) as usize;
                    order.swap(0, swap);
                    for v in order {
                        node.insert(
                            key(worker, k),
                            Bytes::from(vec![v as u8; 24]),
                            ValidityInterval::bounded(
                                Timestamp(v * STEP),
                                Timestamp((v + 1) * STEP),
                            )
                            .unwrap(),
                            TagSet::new(),
                            WallClock::ZERO,
                        );
                        insert_attempts.fetch_add(1, Ordering::Relaxed);
                    }
                    // The still-valid tail, inserted twice: the second
                    // attempt is either a duplicate or (after an
                    // invalidation landed in between) a §4.2 late insert
                    // that must be truncated on arrival.
                    for _ in 0..2 {
                        node.insert(
                            key(worker, k),
                            Bytes::from(vec![0xAA; 24]),
                            ValidityInterval::unbounded(Timestamp(VERSIONS * STEP)),
                            tags(worker, k),
                            WallClock::ZERO,
                        );
                        insert_attempts.fetch_add(1, Ordering::Relaxed);
                    }
                    // Interleave lookups over the whole key space.
                    for probe in 0..4 {
                        let t = mix(worker + probe) % WORKERS;
                        let kk = mix(k + probe) % KEYS_PER_WORKER;
                        let at = mix(worker ^ k ^ probe) % (VERSIONS * STEP + 200);
                        node.lookup(&key(t, kk), &LookupRequest::at(Timestamp(at)));
                        lookup_attempts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // Invalidator: one thread drives the commit-ordered stream, mixing
        // single messages, batches, and heartbeats.
        scope.spawn(|| {
            let mut ts = INVALIDATION_BASE;
            for round in 0..INVALIDATION_ROUNDS {
                let worker = mix(round) % WORKERS;
                let k = mix(round * 31) % KEYS_PER_WORKER;
                if round % 3 == 0 {
                    let batch: Vec<(Timestamp, TagSet)> = (0..2)
                        .map(|i| {
                            ts += 1;
                            (Timestamp(ts), tags((worker + i) % WORKERS, k))
                        })
                        .collect();
                    let heartbeat = Timestamp(ts);
                    node.apply_invalidation_batch(batch, heartbeat);
                } else {
                    ts += 1;
                    node.apply_invalidation(Timestamp(ts), &tags(worker, k));
                }
                if round % 10 == 0 {
                    node.note_timestamp(Timestamp(ts));
                }
            }
        });

        // Evictor: advances a staleness horizon through the bounded-version
        // range, forcing staleness evictions while everything else runs.
        scope.spawn(|| {
            for horizon in 0..VERSIONS * STEP {
                node.evict_stale(Timestamp(horizon));
                std::thread::yield_now();
            }
        });
    });

    (
        insert_attempts.load(Ordering::Relaxed),
        lookup_attempts.load(Ordering::Relaxed),
    )
}

#[test]
fn stressed_node_upholds_every_invariant() {
    let capacity: usize = 48 << 10; // small enough to force capacity evictions
    let node = CacheNode::new(
        "stress",
        NodeConfig {
            capacity_bytes: capacity,
            shards: 4,
            ..NodeConfig::default()
        },
    );

    let (insert_attempts, lookup_attempts) = run_stress(&node);

    // Structural invariants at quiescence: disjoint versions, exact byte
    // accounting, index consistency, §4.2 closure vs the retained history.
    node.validate_invariants().unwrap();

    // A final maintenance pass: every pre-planned bounded version is dead
    // below this horizon, so staleness evictions are guaranteed even if the
    // concurrent evictor raced ahead of the inserters.
    node.evict_stale(Timestamp(VERSIONS * STEP));

    let stats = node.stats();
    // Every insert attempt was either stored, skipped as a duplicate, or
    // rejected below the history floor (none here: nothing pruned the
    // invalidation-era history).
    assert_eq!(
        stats.insertions + stats.duplicate_insertions + stats.history_floor_drops,
        insert_attempts,
    );
    assert_eq!(stats.lookups(), lookup_attempts);
    assert!(node.used_bytes() <= capacity, "budget holds at quiescence");
    assert!(
        stats.staleness_evictions > 0,
        "the evictor thread reclaimed dead versions"
    );

    // Final sweep: after invalidating every key's tag, nothing may serve a
    // timestamp at or above the sweep — no still-valid entry survives a
    // matching invalidation.
    let all_tags: Vec<(Timestamp, TagSet)> = (0..WORKERS)
        .flat_map(|w| (0..KEYS_PER_WORKER).map(move |k| (w, k)))
        .map(|(w, k)| (Timestamp(FINAL_SWEEP_TS), tags(w, k)))
        .collect();
    node.apply_invalidation_batch(all_tags, Timestamp(FINAL_SWEEP_TS));
    node.note_timestamp(Timestamp(FINAL_SWEEP_TS + 100));
    for w in 0..WORKERS {
        for k in 0..KEYS_PER_WORKER {
            let out = node.lookup(
                &key(w, k),
                &LookupRequest::range(Timestamp(FINAL_SWEEP_TS), Timestamp(FINAL_SWEEP_TS + 100)),
            );
            assert!(
                !out.is_hit(),
                "key {w}:{k} served a value above its invalidation"
            );
        }
    }
    node.validate_invariants().unwrap();

    // The lock counters saw the traffic.
    let shard_stats = node.shard_stats();
    assert_eq!(shard_stats.len(), 4);
    assert!(shard_stats.iter().map(|s| s.read_locks).sum::<u64>() > 0);
    assert!(shard_stats.iter().map(|s| s.write_locks).sum::<u64>() > 0);
}

#[test]
fn stressed_cluster_exposes_consistent_nodes() {
    // The same workload through the in-process cluster: nodes are shared by
    // reference (no wrapper mutex), and every node must independently uphold
    // its invariants.
    let cluster = CacheCluster::with_config(
        3,
        NodeConfig {
            capacity_bytes: 64 << 10,
            shards: 4,
            ..NodeConfig::default()
        },
    );

    std::thread::scope(|scope| {
        for worker in 0..WORKERS {
            let cluster = &cluster;
            scope.spawn(move || {
                for k in 0..KEYS_PER_WORKER {
                    cluster.insert(
                        key(worker, k),
                        Bytes::from(vec![1u8; 24]),
                        ValidityInterval::unbounded(Timestamp(1)),
                        tags(worker, k),
                        WallClock::ZERO,
                    );
                    cluster.lookup(&key(worker, k), &LookupRequest::at(Timestamp(1)));
                }
            });
        }
        let cluster = &cluster;
        scope.spawn(move || {
            for round in 0..INVALIDATION_ROUNDS {
                cluster.apply_invalidation(
                    Timestamp(INVALIDATION_BASE + round),
                    &tags(mix(round) % WORKERS, mix(round * 7) % KEYS_PER_WORKER),
                );
            }
        });
    });

    for node in cluster.nodes() {
        node.validate_invariants().unwrap();
    }
    let stats = cluster.stats();
    assert_eq!(
        stats.insertions + stats.duplicate_insertions,
        WORKERS * KEYS_PER_WORKER
    );
    assert_eq!(
        stats.invalidation_messages,
        INVALIDATION_ROUNDS * cluster.node_count() as u64
    );
}
