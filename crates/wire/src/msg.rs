//! The protocol's message catalogue: requests, responses, and their
//! byte-level encodings.
//!
//! Every message encodes to a frame *body*: `[version][opcode][payload]`.
//! Request opcodes live below `0x80`, response opcodes at or above it, so a
//! desynchronized peer is detected immediately instead of misparsed.

use bytes::Bytes;
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::codec::{Reader, Writer};
use crate::{WireError, PROTOCOL_VERSION};

/// One entry of an invalidation batch: everything a single update
/// transaction invalidated (mirrors `mvdb::InvalidationMessage`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidationEvent {
    /// The update transaction's commit timestamp.
    pub timestamp: Timestamp,
    /// The invalidation tags the transaction affected.
    pub tags: TagSet,
}

/// Why a lookup missed, as a wire-level code (mirrors
/// `cache_server::MissKind`; conversions live in `cache-server` so this crate
/// stays dependency-light).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissCode {
    /// The key was never inserted.
    Compulsory,
    /// Every cached version was too stale.
    Staleness,
    /// The entry had been evicted.
    Capacity,
    /// Fresh-enough versions exist but none intersects the pin set.
    Consistency,
}

impl MissCode {
    fn to_u8(self) -> u8 {
        match self {
            MissCode::Compulsory => 0,
            MissCode::Staleness => 1,
            MissCode::Capacity => 2,
            MissCode::Consistency => 3,
        }
    }

    fn from_u8(v: u8) -> crate::Result<MissCode> {
        Ok(match v {
            0 => MissCode::Compulsory,
            1 => MissCode::Staleness,
            2 => MissCode::Capacity,
            3 => MissCode::Consistency,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Machine-readable category of an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request's protocol version is not supported.
    Version,
    /// The request could not be decoded.
    Malformed,
    /// The server hit an internal failure handling the request.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Version => 0,
            ErrorCode::Malformed => 1,
            ErrorCode::Internal => 2,
        }
    }

    fn from_u8(v: u8) -> crate::Result<ErrorCode> {
        Ok(match v {
            0 => ErrorCode::Version,
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Internal,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// A cache node's counter snapshot as carried on the wire (mirrors
/// `cache_server::CacheStats`; conversions live in `cache-server`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Lookups that returned a value.
    pub hits: u64,
    /// Misses because the key was never inserted.
    pub compulsory_misses: u64,
    /// Misses because every cached version was too stale.
    pub staleness_misses: u64,
    /// Misses because the entry had been evicted.
    pub capacity_misses: u64,
    /// Misses because no fresh-enough version intersected the pin set.
    pub consistency_misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Insertions skipped as duplicates.
    pub duplicate_insertions: u64,
    /// Entries truncated by invalidations.
    pub invalidated_entries: u64,
    /// Entries truncated on insert (§4.2 update/insert race).
    pub late_insert_truncations: u64,
    /// Still-valid entries bounded by a `SealStillValid` request.
    pub sealed_entries: u64,
    /// Invalidation messages processed.
    pub invalidation_messages: u64,
    /// Entries evicted for memory.
    pub lru_evictions: u64,
    /// Entries evicted as too stale to use.
    pub staleness_evictions: u64,
    /// Still-valid insertions dropped below the pruned-history floor.
    pub history_floor_drops: u64,
    /// Bytes currently cached.
    pub used_bytes: u64,
}

impl NodeStats {
    fn encode(&self, w: &mut Writer) {
        for v in [
            self.hits,
            self.compulsory_misses,
            self.staleness_misses,
            self.capacity_misses,
            self.consistency_misses,
            self.insertions,
            self.duplicate_insertions,
            self.invalidated_entries,
            self.late_insert_truncations,
            self.sealed_entries,
            self.invalidation_messages,
            self.lru_evictions,
            self.staleness_evictions,
            self.history_floor_drops,
            self.used_bytes,
        ] {
            w.put_u64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<NodeStats> {
        Ok(NodeStats {
            hits: r.get_u64()?,
            compulsory_misses: r.get_u64()?,
            staleness_misses: r.get_u64()?,
            capacity_misses: r.get_u64()?,
            consistency_misses: r.get_u64()?,
            insertions: r.get_u64()?,
            duplicate_insertions: r.get_u64()?,
            invalidated_entries: r.get_u64()?,
            late_insert_truncations: r.get_u64()?,
            sealed_entries: r.get_u64()?,
            invalidation_messages: r.get_u64()?,
            lru_evictions: r.get_u64()?,
            staleness_evictions: r.get_u64()?,
            history_floor_drops: r.get_u64()?,
            used_bytes: r.get_u64()?,
        })
    }
}

/// One shard's lock-contention and eviction counters as carried on the wire
/// (mirrors `cache_server::CacheShardStats`; conversions live in
/// `cache-server`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of the shard within its node.
    pub shard: u32,
    /// Shared (reader) lock acquisitions.
    pub read_locks: u64,
    /// Exclusive (writer) lock acquisitions.
    pub write_locks: u64,
    /// Reader acquisitions that had to wait.
    pub read_waits: u64,
    /// Writer acquisitions that had to wait.
    pub write_waits: u64,
    /// Entries evicted to fit the shard's capacity budget.
    pub lru_evictions: u64,
    /// Entries evicted as too stale to use.
    pub staleness_evictions: u64,
    /// Entries currently stored on the shard.
    pub entries: u64,
    /// Bytes currently stored on the shard.
    pub used_bytes: u64,
}

impl ShardStats {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.shard);
        for v in [
            self.read_locks,
            self.write_locks,
            self.read_waits,
            self.write_waits,
            self.lru_evictions,
            self.staleness_evictions,
            self.entries,
            self.used_bytes,
        ] {
            w.put_u64(v);
        }
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<ShardStats> {
        Ok(ShardStats {
            shard: r.get_u32()?,
            read_locks: r.get_u64()?,
            write_locks: r.get_u64()?,
            read_waits: r.get_u64()?,
            write_waits: r.get_u64()?,
            lru_evictions: r.get_u64()?,
            staleness_evictions: r.get_u64()?,
            entries: r.get_u64()?,
            used_bytes: r.get_u64()?,
        })
    }
}

/// One latency histogram as carried on the wire (protocol v6): the scalar
/// summary plus the *nonzero* log2 buckets as sparse `(bucket index,
/// count)` pairs — a full 64-bucket array would mostly carry zeroes.
/// Mirrors `obs::HistogramSnapshot`; conversions live in `cache-server` so
/// this crate stays dependency-light.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramReport {
    /// The histogram's registry name (e.g. `server.req.get.us`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Sparse nonzero buckets: `(log2 bucket index, count)`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramReport {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
        w.put_u32(self.buckets.len() as u32);
        for (index, count) in &self.buckets {
            w.put_u8(*index);
            w.put_u64(*count);
        }
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<HistogramReport> {
        let name = r.get_str()?;
        let count = r.get_u64()?;
        let sum = r.get_u64()?;
        let min = r.get_u64()?;
        let max = r.get_u64()?;
        let bucket_count = r.get_u32()? as usize;
        // A log2 histogram has at most 64 buckets; a larger count is a
        // corrupt or hostile frame.
        if bucket_count > 64 {
            return Err(WireError::TooLarge(bucket_count));
        }
        let mut buckets = Vec::with_capacity(bucket_count);
        for _ in 0..bucket_count {
            buckets.push((r.get_u8()?, r.get_u64()?));
        }
        Ok(HistogramReport {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

/// A node's full observability registry as carried on the wire (protocol
/// v6): every named counter, gauge, and latency histogram, sorted by name.
/// Mirrors `obs::MetricsSnapshot`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every latency histogram.
    pub histograms: Vec<HistogramReport>,
}

impl MetricsReport {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.counters.len() as u32);
        for (name, v) in &self.counters {
            w.put_str(name);
            w.put_u64(*v);
        }
        w.put_u32(self.gauges.len() as u32);
        for (name, v) in &self.gauges {
            w.put_str(name);
            w.put_u64(*v as u64);
        }
        w.put_u32(self.histograms.len() as u32);
        for h in &self.histograms {
            h.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<MetricsReport> {
        // Each counter/gauge entry is at least 12 bytes, each histogram at
        // least 40; reject counts no legal frame could hold.
        let counter_count = r.get_u32()? as usize;
        if counter_count > crate::MAX_FRAME_BYTES / 12 {
            return Err(WireError::TooLarge(counter_count));
        }
        let mut counters = Vec::with_capacity(counter_count.min(1024));
        for _ in 0..counter_count {
            counters.push((r.get_str()?, r.get_u64()?));
        }
        let gauge_count = r.get_u32()? as usize;
        if gauge_count > crate::MAX_FRAME_BYTES / 12 {
            return Err(WireError::TooLarge(gauge_count));
        }
        let mut gauges = Vec::with_capacity(gauge_count.min(1024));
        for _ in 0..gauge_count {
            gauges.push((r.get_str()?, r.get_u64()? as i64));
        }
        let histogram_count = r.get_u32()? as usize;
        if histogram_count > crate::MAX_FRAME_BYTES / 40 {
            return Err(WireError::TooLarge(histogram_count));
        }
        let mut histograms = Vec::with_capacity(histogram_count.min(1024));
        for _ in 0..histogram_count {
            histograms.push(HistogramReport::decode(r)?);
        }
        Ok(MetricsReport {
            counters,
            gauges,
            histograms,
        })
    }
}

// Request opcodes (< 0x80).
const OP_PING: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_PUT: u8 = 0x03;
const OP_INVALIDATION_BATCH: u8 = 0x04;
const OP_EVICT_STALE: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_RESET_STATS: u8 = 0x07;
const OP_SEAL_STILL_VALID: u8 = 0x08;
const OP_SHARD_STATS: u8 = 0x09;
const OP_MULTI_GET: u8 = 0x0A;
const OP_MULTI_PUT: u8 = 0x0B;
const OP_RING_EPOCH: u8 = 0x0C;
const OP_METRICS: u8 = 0x0D;

// Response opcodes (>= 0x80).
const OP_PONG: u8 = 0x81;
const OP_HIT: u8 = 0x82;
const OP_MISS: u8 = 0x83;
const OP_PUT_ACK: u8 = 0x84;
const OP_INVALIDATION_ACK: u8 = 0x85;
const OP_STATS_SNAPSHOT: u8 = 0x86;
const OP_OK: u8 = 0x87;
const OP_SEALED: u8 = 0x88;
const OP_SHARD_STATS_SNAPSHOT: u8 = 0x89;
const OP_MULTI_GET_RESULT: u8 = 0x8A;
const OP_MULTI_PUT_ACK: u8 = 0x8B;
const OP_EPOCH_ACK: u8 = 0x8C;
const OP_WRONG_EPOCH: u8 = 0x8D;
const OP_METRICS_SNAPSHOT: u8 = 0x8E;
const OP_ERROR: u8 = 0xFF;

/// One store operation of a [`Request::MultiPut`] batch; field-for-field the
/// payload of a single [`Request::Put`].
#[derive(Debug, Clone, PartialEq)]
pub struct PutEntry {
    /// The cacheable call this value memoizes.
    pub key: CacheKey,
    /// The serialized result.
    pub value: Bytes,
    /// The range of timestamps over which the value is current.
    pub validity: ValidityInterval,
    /// The value's invalidation tags.
    pub tags: TagSet,
    /// The client's wall-clock time of the insert.
    pub now: WallClock,
}

impl PutEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_key(&self.key);
        w.put_bytes(&self.value);
        w.put_interval(self.validity);
        w.put_tagset(&self.tags);
        w.put_wallclock(self.now);
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<PutEntry> {
        Ok(PutEntry {
            key: r.get_key()?,
            value: r.get_value()?,
            validity: r.get_interval()?,
            tags: r.get_tagset()?,
            now: r.get_wallclock()?,
        })
    }
}

/// One position of a [`Response::MultiGetResult`]: the per-key outcome of a
/// scatter-gather lookup, mirroring the single-key
/// [`Response::Hit`]/[`Response::Miss`] pair.
#[derive(Debug, Clone, PartialEq)]
pub enum GetResult {
    /// The lookup found a matching version.
    Hit {
        /// The cached value.
        value: Bytes,
        /// The effective validity interval (still-valid entries bounded by
        /// the node's last processed invalidation, §4.2).
        validity: ValidityInterval,
        /// The validity interval exactly as stored (possibly unbounded).
        stored_validity: ValidityInterval,
        /// The entry's dependency tags.
        tags: TagSet,
    },
    /// The lookup found nothing usable.
    Miss {
        /// Why (§8.3 classification).
        kind: MissCode,
    },
}

impl GetResult {
    fn encode(&self, w: &mut Writer) {
        match self {
            GetResult::Miss { kind } => {
                w.put_u8(0);
                w.put_u8(kind.to_u8());
            }
            GetResult::Hit {
                value,
                validity,
                stored_validity,
                tags,
            } => {
                w.put_u8(1);
                w.put_bytes(value);
                w.put_interval(*validity);
                w.put_interval(*stored_validity);
                w.put_tagset(tags);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> crate::Result<GetResult> {
        match r.get_u8()? {
            0 => Ok(GetResult::Miss {
                kind: MissCode::from_u8(r.get_u8()?)?,
            }),
            1 => Ok(GetResult::Hit {
                value: r.get_value()?,
                validity: r.get_interval()?,
                stored_validity: r.get_interval()?,
                tags: r.get_tagset()?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A request from the TxCache library to a cache node.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / readiness probe; the nonce is echoed back.
    Ping {
        /// An arbitrary value echoed in the matching [`Response::Pong`].
        nonce: u64,
    },
    /// A versioned lookup (§4.1): the key plus the transaction's acceptable
    /// timestamp interval.
    VersionedGet {
        /// The cacheable call being looked up.
        key: CacheKey,
        /// Lowest timestamp in the transaction's pin set.
        pinset_lo: Timestamp,
        /// Highest timestamp in the transaction's pin set.
        pinset_hi: Timestamp,
        /// Earliest timestamp acceptable under the staleness limit alone
        /// (used only to classify misses).
        freshness_lo: Timestamp,
    },
    /// Store a computed value with its validity interval and dependencies.
    Put {
        /// The cacheable call this value memoizes.
        key: CacheKey,
        /// The serialized result.
        value: Bytes,
        /// The range of timestamps over which the value is current.
        validity: ValidityInterval,
        /// The value's invalidation tags.
        tags: TagSet,
        /// The client's wall-clock time of the insert.
        now: WallClock,
    },
    /// An ordered slice of the database's invalidation stream (§4.2) plus a
    /// heartbeat: all invalidations at or below `heartbeat` have been
    /// delivered once this batch is applied.
    InvalidationBatch {
        /// The invalidation events, in commit order.
        events: Vec<InvalidationEvent>,
        /// Timestamp through which the stream is now complete.
        heartbeat: Timestamp,
    },
    /// Eagerly evict entries whose validity ended before the horizon.
    EvictStale {
        /// No transaction can use entries that ended before this timestamp.
        min_useful_ts: Timestamp,
    },
    /// Fetch the node's counter snapshot.
    Stats,
    /// Fetch the node's per-shard lock-contention and eviction counters.
    ShardStats,
    /// Zero the node's hit/miss counters.
    ResetStats,
    /// Bound every still-valid entry at the node's current invalidation
    /// horizon. A client sends this after healing a broken connection: the
    /// node may have missed invalidation-stream messages while unreachable,
    /// so its still-valid entries must not be extended by later heartbeats
    /// (the reliable-multicast recovery rule of §4.2).
    SealStillValid,
    /// A scatter-gather batch of versioned lookups (protocol v4): every key
    /// of a transaction's read set routed to this node, sharing one pin-set
    /// interval, answered by a single [`Response::MultiGetResult`] — so a
    /// 16-key read set costs one round trip instead of sixteen.
    MultiGet {
        /// The ring epoch the client routed this batch with (protocol v5).
        /// A node that has been told a different epoch answers
        /// [`Response::WrongEpoch`] instead of serving misses for keys that
        /// moved. Zero means "unversioned": the check is skipped.
        epoch: u64,
        /// The cacheable calls being looked up, in request order.
        keys: Vec<CacheKey>,
        /// Lowest timestamp in the transaction's pin set.
        pinset_lo: Timestamp,
        /// Highest timestamp in the transaction's pin set.
        pinset_hi: Timestamp,
        /// Earliest timestamp acceptable under the staleness limit alone.
        freshness_lo: Timestamp,
    },
    /// A batch of stores (protocol v4), acknowledged as one
    /// [`Response::MultiPutAck`].
    MultiPut {
        /// The ring epoch the client routed this batch with (protocol v5);
        /// zero skips the check, see [`Request::MultiGet::epoch`].
        epoch: u64,
        /// The store operations, applied in order.
        entries: Vec<PutEntry>,
    },
    /// Announces the cluster's ring-membership epoch to a node (protocol
    /// v5). Nodes remember the highest epoch they have seen and use it to
    /// fence epoch-stamped [`Request::MultiGet`]/[`Request::MultiPut`]
    /// batches from clients still routing on an older ring.
    RingEpoch {
        /// The membership epoch being announced.
        epoch: u64,
    },
    /// Fetch the node's full observability registry (protocol v6): every
    /// named counter, gauge, and per-opcode latency histogram, answered by
    /// [`Response::MetricsSnapshot`]. Unlike [`Request::Stats`] — a fixed
    /// struct of cache counters — the registry is open-ended, so new
    /// metrics reach monitoring without a protocol change.
    Metrics,
}

impl Request {
    /// Encodes the request into a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Request::Ping { nonce } => {
                w.put_u8(OP_PING);
                w.put_u64(*nonce);
            }
            Request::VersionedGet {
                key,
                pinset_lo,
                pinset_hi,
                freshness_lo,
            } => {
                w.put_u8(OP_GET);
                w.put_key(key);
                w.put_timestamp(*pinset_lo);
                w.put_timestamp(*pinset_hi);
                w.put_timestamp(*freshness_lo);
            }
            Request::Put {
                key,
                value,
                validity,
                tags,
                now,
            } => {
                w.put_u8(OP_PUT);
                w.put_key(key);
                w.put_bytes(value);
                w.put_interval(*validity);
                w.put_tagset(tags);
                w.put_wallclock(*now);
            }
            Request::InvalidationBatch { events, heartbeat } => {
                w.put_u8(OP_INVALIDATION_BATCH);
                w.put_u32(events.len() as u32);
                for e in events {
                    w.put_timestamp(e.timestamp);
                    w.put_tagset(&e.tags);
                }
                w.put_timestamp(*heartbeat);
            }
            Request::EvictStale { min_useful_ts } => {
                w.put_u8(OP_EVICT_STALE);
                w.put_timestamp(*min_useful_ts);
            }
            Request::Stats => w.put_u8(OP_STATS),
            Request::ShardStats => w.put_u8(OP_SHARD_STATS),
            Request::ResetStats => w.put_u8(OP_RESET_STATS),
            Request::SealStillValid => w.put_u8(OP_SEAL_STILL_VALID),
            Request::MultiGet {
                epoch,
                keys,
                pinset_lo,
                pinset_hi,
                freshness_lo,
            } => {
                w.put_u8(OP_MULTI_GET);
                w.put_u64(*epoch);
                w.put_u32(keys.len() as u32);
                for key in keys {
                    w.put_key(key);
                }
                w.put_timestamp(*pinset_lo);
                w.put_timestamp(*pinset_hi);
                w.put_timestamp(*freshness_lo);
            }
            Request::MultiPut { epoch, entries } => {
                w.put_u8(OP_MULTI_PUT);
                w.put_u64(*epoch);
                w.put_u32(entries.len() as u32);
                for entry in entries {
                    entry.encode(&mut w);
                }
            }
            Request::RingEpoch { epoch } => {
                w.put_u8(OP_RING_EPOCH);
                w.put_u64(*epoch);
            }
            Request::Metrics => w.put_u8(OP_METRICS),
        }
        w.into_vec()
    }

    /// Decodes a frame body into a request.
    pub fn decode(body: &[u8]) -> crate::Result<Request> {
        Request::decode_reader(Reader::new(body))
    }

    /// Decodes a frame body held in a shared buffer; value payloads come out
    /// as zero-copy slices of `body` instead of per-value allocations.
    pub fn decode_shared(body: &Bytes) -> crate::Result<Request> {
        Request::decode_reader(Reader::new_shared(body))
    }

    fn decode_reader(mut r: Reader<'_>) -> crate::Result<Request> {
        let version = r.get_u8()?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::Version { got: version });
        }
        let op = r.get_u8()?;
        let request = match op {
            OP_PING => Request::Ping {
                nonce: r.get_u64()?,
            },
            OP_GET => Request::VersionedGet {
                key: r.get_key()?,
                pinset_lo: r.get_timestamp()?,
                pinset_hi: r.get_timestamp()?,
                freshness_lo: r.get_timestamp()?,
            },
            OP_PUT => Request::Put {
                key: r.get_key()?,
                value: r.get_value()?,
                validity: r.get_interval()?,
                tags: r.get_tagset()?,
                now: r.get_wallclock()?,
            },
            OP_INVALIDATION_BATCH => {
                let count = r.get_u32()? as usize;
                if count > crate::MAX_FRAME_BYTES / 8 {
                    return Err(WireError::TooLarge(count));
                }
                let mut events = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    events.push(InvalidationEvent {
                        timestamp: r.get_timestamp()?,
                        tags: r.get_tagset()?,
                    });
                }
                Request::InvalidationBatch {
                    events,
                    heartbeat: r.get_timestamp()?,
                }
            }
            OP_EVICT_STALE => Request::EvictStale {
                min_useful_ts: r.get_timestamp()?,
            },
            OP_STATS => Request::Stats,
            OP_SHARD_STATS => Request::ShardStats,
            OP_RESET_STATS => Request::ResetStats,
            OP_SEAL_STILL_VALID => Request::SealStillValid,
            OP_MULTI_GET => {
                let epoch = r.get_u64()?;
                let count = r.get_u32()? as usize;
                if count > crate::MAX_FRAME_BYTES / 8 {
                    return Err(WireError::TooLarge(count));
                }
                let mut keys = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    keys.push(r.get_key()?);
                }
                Request::MultiGet {
                    epoch,
                    keys,
                    pinset_lo: r.get_timestamp()?,
                    pinset_hi: r.get_timestamp()?,
                    freshness_lo: r.get_timestamp()?,
                }
            }
            OP_MULTI_PUT => {
                let epoch = r.get_u64()?;
                let count = r.get_u32()? as usize;
                if count > crate::MAX_FRAME_BYTES / 8 {
                    return Err(WireError::TooLarge(count));
                }
                let mut entries = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    entries.push(PutEntry::decode(&mut r)?);
                }
                Request::MultiPut { epoch, entries }
            }
            OP_RING_EPOCH => Request::RingEpoch {
                epoch: r.get_u64()?,
            },
            OP_METRICS => Request::Metrics,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(request)
    }
}

/// A cache node's answer to one [`Request`]. Responses are returned in
/// request order, which is what makes client-side pipelining sound.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of a [`Request::Ping`].
    Pong {
        /// The nonce from the ping.
        nonce: u64,
    },
    /// The lookup found a matching version.
    Hit {
        /// The cached value.
        value: Bytes,
        /// The effective validity interval (still-valid entries bounded by
        /// the node's last processed invalidation, §4.2); the library narrows
        /// the pin set with this.
        validity: ValidityInterval,
        /// The validity interval exactly as stored (possibly unbounded);
        /// enclosing cacheable calls accumulate this one.
        stored_validity: ValidityInterval,
        /// The entry's dependency tags.
        tags: TagSet,
    },
    /// The lookup found nothing usable.
    Miss {
        /// Why (§8.3 classification).
        kind: MissCode,
    },
    /// A [`Request::Put`] was applied (or skipped as a duplicate).
    PutAck,
    /// A [`Request::InvalidationBatch`] was applied.
    InvalidationAck {
        /// Number of events processed from the batch.
        applied: u64,
    },
    /// A [`Request::SealStillValid`] was applied.
    Sealed {
        /// Number of still-valid entries that were bounded.
        sealed: u64,
    },
    /// The node's counters.
    StatsSnapshot(NodeStats),
    /// The node's per-shard lock-contention and eviction counters.
    ShardStatsSnapshot(Vec<ShardStats>),
    /// Per-key outcomes of a [`Request::MultiGet`], in the request's key
    /// order.
    MultiGetResult {
        /// One outcome per requested key.
        results: Vec<GetResult>,
    },
    /// A [`Request::MultiPut`] was applied.
    MultiPutAck {
        /// Number of entries stored (duplicates included — they are counted
        /// by the node's own `duplicate_insertions` stat).
        applied: u64,
    },
    /// A [`Request::RingEpoch`] announcement was absorbed.
    EpochAck {
        /// The highest membership epoch the node has now seen (at least the
        /// announced one; higher if another client announced a newer ring).
        epoch: u64,
    },
    /// An epoch-stamped batch was refused because the client routed it on a
    /// stale ring (protocol v5). A typed redirect: the client should refresh
    /// its ring view to at least `expected` and re-route, instead of
    /// mistaking relocated keys for misses.
    WrongEpoch {
        /// The membership epoch the node currently expects.
        expected: u64,
    },
    /// The node's full observability registry (protocol v6), answering
    /// [`Request::Metrics`].
    MetricsSnapshot(MetricsReport),
    /// Generic success for requests with no payload to return.
    Ok,
    /// The request failed; the connection remains usable unless the error is
    /// a version mismatch.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response into a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(32);
        w.put_u8(PROTOCOL_VERSION);
        match self {
            Response::Pong { nonce } => {
                w.put_u8(OP_PONG);
                w.put_u64(*nonce);
            }
            Response::Hit {
                value,
                validity,
                stored_validity,
                tags,
            } => {
                w.put_u8(OP_HIT);
                w.put_bytes(value);
                w.put_interval(*validity);
                w.put_interval(*stored_validity);
                w.put_tagset(tags);
            }
            Response::Miss { kind } => {
                w.put_u8(OP_MISS);
                w.put_u8(kind.to_u8());
            }
            Response::PutAck => w.put_u8(OP_PUT_ACK),
            Response::InvalidationAck { applied } => {
                w.put_u8(OP_INVALIDATION_ACK);
                w.put_u64(*applied);
            }
            Response::Sealed { sealed } => {
                w.put_u8(OP_SEALED);
                w.put_u64(*sealed);
            }
            Response::StatsSnapshot(stats) => {
                w.put_u8(OP_STATS_SNAPSHOT);
                stats.encode(&mut w);
            }
            Response::ShardStatsSnapshot(shards) => {
                w.put_u8(OP_SHARD_STATS_SNAPSHOT);
                w.put_u32(shards.len() as u32);
                for shard in shards {
                    shard.encode(&mut w);
                }
            }
            Response::MultiGetResult { results } => {
                w.put_u8(OP_MULTI_GET_RESULT);
                w.put_u32(results.len() as u32);
                for result in results {
                    result.encode(&mut w);
                }
            }
            Response::MultiPutAck { applied } => {
                w.put_u8(OP_MULTI_PUT_ACK);
                w.put_u64(*applied);
            }
            Response::EpochAck { epoch } => {
                w.put_u8(OP_EPOCH_ACK);
                w.put_u64(*epoch);
            }
            Response::WrongEpoch { expected } => {
                w.put_u8(OP_WRONG_EPOCH);
                w.put_u64(*expected);
            }
            Response::MetricsSnapshot(report) => {
                w.put_u8(OP_METRICS_SNAPSHOT);
                report.encode(&mut w);
            }
            Response::Ok => w.put_u8(OP_OK),
            Response::Error { code, message } => {
                w.put_u8(OP_ERROR);
                w.put_u8(code.to_u8());
                w.put_str(message);
            }
        }
        w.into_vec()
    }

    /// Decodes a frame body into a response.
    pub fn decode(body: &[u8]) -> crate::Result<Response> {
        Response::decode_reader(Reader::new(body))
    }

    /// Decodes a frame body held in a shared buffer; hit values come out as
    /// zero-copy slices of `body` instead of per-value allocations.
    pub fn decode_shared(body: &Bytes) -> crate::Result<Response> {
        Response::decode_reader(Reader::new_shared(body))
    }

    fn decode_reader(mut r: Reader<'_>) -> crate::Result<Response> {
        let version = r.get_u8()?;
        if version != PROTOCOL_VERSION {
            return Err(WireError::Version { got: version });
        }
        let op = r.get_u8()?;
        let response = match op {
            OP_PONG => Response::Pong {
                nonce: r.get_u64()?,
            },
            OP_HIT => Response::Hit {
                value: r.get_value()?,
                validity: r.get_interval()?,
                stored_validity: r.get_interval()?,
                tags: r.get_tagset()?,
            },
            OP_MISS => Response::Miss {
                kind: MissCode::from_u8(r.get_u8()?)?,
            },
            OP_PUT_ACK => Response::PutAck,
            OP_INVALIDATION_ACK => Response::InvalidationAck {
                applied: r.get_u64()?,
            },
            OP_SEALED => Response::Sealed {
                sealed: r.get_u64()?,
            },
            OP_STATS_SNAPSHOT => Response::StatsSnapshot(NodeStats::decode(&mut r)?),
            OP_SHARD_STATS_SNAPSHOT => {
                let count = r.get_u32()? as usize;
                // Each shard entry is 68 bytes; reject counts no frame can hold.
                if count > crate::MAX_FRAME_BYTES / 68 {
                    return Err(WireError::TooLarge(count));
                }
                let mut shards = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    shards.push(ShardStats::decode(&mut r)?);
                }
                Response::ShardStatsSnapshot(shards)
            }
            OP_MULTI_GET_RESULT => {
                let count = r.get_u32()? as usize;
                if count > crate::MAX_FRAME_BYTES / 2 {
                    return Err(WireError::TooLarge(count));
                }
                let mut results = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    results.push(GetResult::decode(&mut r)?);
                }
                Response::MultiGetResult { results }
            }
            OP_MULTI_PUT_ACK => Response::MultiPutAck {
                applied: r.get_u64()?,
            },
            OP_EPOCH_ACK => Response::EpochAck {
                epoch: r.get_u64()?,
            },
            OP_WRONG_EPOCH => Response::WrongEpoch {
                expected: r.get_u64()?,
            },
            OP_METRICS_SNAPSHOT => Response::MetricsSnapshot(MetricsReport::decode(&mut r)?),
            OP_OK => Response::Ok,
            OP_ERROR => Response::Error {
                code: ErrorCode::from_u8(r.get_u8()?)?,
                message: r.get_str()?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(response)
    }

    /// Converts an error frame into a [`WireError::Remote`], passing other
    /// responses through. Clients call this right after receiving.
    pub fn into_result(self) -> crate::Result<Response> {
        match self {
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn tags() -> TagSet {
        [
            InvalidationTag::keyed("items", "id=7"),
            InvalidationTag::wildcard("users"),
        ]
        .into_iter()
        .collect()
    }

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping { nonce: 99 },
            Request::VersionedGet {
                key: CacheKey::new("f", "[1]"),
                pinset_lo: Timestamp(3),
                pinset_hi: Timestamp(9),
                freshness_lo: Timestamp(1),
            },
            Request::Put {
                key: CacheKey::new("g", ""),
                value: Bytes::from(vec![1, 2, 3]),
                validity: ValidityInterval::unbounded(Timestamp(4)),
                tags: tags(),
                now: WallClock::from_secs(1),
            },
            Request::InvalidationBatch {
                events: vec![
                    InvalidationEvent {
                        timestamp: Timestamp(5),
                        tags: tags(),
                    },
                    InvalidationEvent {
                        timestamp: Timestamp(6),
                        tags: TagSet::new(),
                    },
                ],
                heartbeat: Timestamp(6),
            },
            Request::EvictStale {
                min_useful_ts: Timestamp(11),
            },
            Request::Stats,
            Request::ShardStats,
            Request::ResetStats,
            Request::SealStillValid,
            Request::MultiGet {
                epoch: 3,
                keys: vec![
                    CacheKey::new("f", "[1]"),
                    CacheKey::new("f", "[2]"),
                    CacheKey::new("g", ""),
                ],
                pinset_lo: Timestamp(3),
                pinset_hi: Timestamp(9),
                freshness_lo: Timestamp(1),
            },
            Request::MultiGet {
                epoch: 0,
                keys: Vec::new(),
                pinset_lo: Timestamp(1),
                pinset_hi: Timestamp(1),
                freshness_lo: Timestamp(1),
            },
            Request::RingEpoch { epoch: 42 },
            Request::Metrics,
            Request::MultiPut {
                epoch: 7,
                entries: vec![
                    PutEntry {
                        key: CacheKey::new("g", "[1]"),
                        value: Bytes::from(vec![4, 5]),
                        validity: ValidityInterval::unbounded(Timestamp(4)),
                        tags: tags(),
                        now: WallClock::from_secs(2),
                    },
                    PutEntry {
                        key: CacheKey::new("g", "[2]"),
                        value: Bytes::new(),
                        validity: ValidityInterval::bounded(Timestamp(1), Timestamp(2)).unwrap(),
                        tags: TagSet::new(),
                        now: WallClock::ZERO,
                    },
                ],
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong { nonce: 99 },
            Response::Hit {
                value: Bytes::from(vec![9; 32]),
                validity: ValidityInterval::bounded(Timestamp(1), Timestamp(5)).unwrap(),
                stored_validity: ValidityInterval::unbounded(Timestamp(1)),
                tags: tags(),
            },
            Response::Miss {
                kind: MissCode::Consistency,
            },
            Response::PutAck,
            Response::InvalidationAck { applied: 2 },
            Response::Sealed { sealed: 7 },
            Response::StatsSnapshot(NodeStats {
                hits: 5,
                history_floor_drops: 2,
                used_bytes: 1024,
                ..NodeStats::default()
            }),
            Response::ShardStatsSnapshot(vec![
                ShardStats {
                    shard: 0,
                    read_locks: 12,
                    write_locks: 3,
                    read_waits: 1,
                    write_waits: 0,
                    lru_evictions: 2,
                    staleness_evictions: 1,
                    entries: 9,
                    used_bytes: 512,
                },
                ShardStats::default(),
            ]),
            Response::ShardStatsSnapshot(Vec::new()),
            Response::MultiGetResult {
                results: vec![
                    GetResult::Hit {
                        value: Bytes::from(vec![1, 2, 3]),
                        validity: ValidityInterval::bounded(Timestamp(1), Timestamp(5)).unwrap(),
                        stored_validity: ValidityInterval::unbounded(Timestamp(1)),
                        tags: tags(),
                    },
                    GetResult::Miss {
                        kind: MissCode::Compulsory,
                    },
                ],
            },
            Response::MultiGetResult {
                results: Vec::new(),
            },
            Response::MultiPutAck { applied: 2 },
            Response::EpochAck { epoch: 42 },
            Response::WrongEpoch { expected: 43 },
            Response::MetricsSnapshot(MetricsReport {
                counters: vec![
                    ("server.conns.accepted".into(), 12),
                    ("server.slow_ops.captured".into(), 1),
                ],
                gauges: vec![("server.queue.depth".into(), -2)],
                histograms: vec![
                    HistogramReport {
                        name: "server.req.get.us".into(),
                        count: 3,
                        sum: 900,
                        min: 100,
                        max: 500,
                        buckets: vec![(6, 1), (8, 2)],
                    },
                    HistogramReport {
                        name: "server.req.put.us".into(),
                        count: 0,
                        sum: 0,
                        min: u64::MAX,
                        max: 0,
                        buckets: Vec::new(),
                    },
                ],
            }),
            Response::MetricsSnapshot(MetricsReport::default()),
            Response::Ok,
            Response::Error {
                code: ErrorCode::Malformed,
                message: "bad frame".into(),
            },
        ]
    }

    #[test]
    fn every_request_roundtrips() {
        for request in all_requests() {
            let body = request.encode();
            assert_eq!(Request::decode(&body).unwrap(), request, "{request:?}");
        }
    }

    #[test]
    fn every_response_roundtrips() {
        for response in all_responses() {
            let body = response.encode();
            assert_eq!(Response::decode(&body).unwrap(), response, "{response:?}");
        }
    }

    #[test]
    fn version_mismatch_is_detected() {
        let mut body = Request::Ping { nonce: 1 }.encode();
        body[0] = PROTOCOL_VERSION + 1;
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::Version { got }) if got == PROTOCOL_VERSION + 1
        ));
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        let body = vec![PROTOCOL_VERSION, 0x77];
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::UnknownOpcode(0x77))
        ));
        let body = vec![PROTOCOL_VERSION, 0x10];
        assert!(matches!(
            Response::decode(&body),
            Err(WireError::UnknownOpcode(0x10))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Stats.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn error_responses_convert_to_remote_errors() {
        let err = Response::Error {
            code: ErrorCode::Internal,
            message: "boom".into(),
        };
        assert!(matches!(
            err.into_result(),
            Err(WireError::Remote {
                code: ErrorCode::Internal,
                ..
            })
        ));
        assert!(Response::Ok.into_result().is_ok());
    }
}
