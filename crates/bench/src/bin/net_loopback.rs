//! Loopback protocol-cost benchmark: the same cache workload driven through
//! the in-process backend and through `txcached` TCP servers on 127.0.0.1,
//! reporting hit latency and throughput for both. The gap between the two
//! columns *is* the protocol cost (framing, syscalls, loopback RTT) that the
//! in-process reproduction could never measure.
//!
//! ```text
//! net_loopback [--nodes N] [--keys K] [--ops OPS] [--value-bytes B]
//! ```

use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use cache_server::{CacheCluster, LookupRequest, NodeConfig, TxcachedServer};
use txcache::backend::{CacheBackend, RemoteCluster};
use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};

struct Args {
    nodes: usize,
    keys: usize,
    ops: usize,
    value_bytes: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 2,
        keys: 512,
        ops: 20_000,
        value_bytes: 256,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("bad or missing value for {what}");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--nodes" => args.nodes = value("--nodes").max(1),
            "--keys" => args.keys = value("--keys").max(1),
            "--ops" => args.ops = value("--ops").max(1),
            "--value-bytes" => args.value_bytes = value("--value-bytes"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: net_loopback [--nodes N] [--keys K] [--ops OPS] [--value-bytes B]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Keys per batched lookup in the scatter-gather phase.
const MULTI_BATCH: usize = 16;

struct BackendReport {
    label: &'static str,
    fill_ops_per_sec: f64,
    hit_mean_us: f64,
    hit_p99_us: f64,
    hit_ops_per_sec: f64,
    /// Mean latency of one MULTI_BATCH-key `lookup_many` round trip.
    multi_mean_us: f64,
    multi_p99_us: f64,
    invalidation_batches_per_sec: f64,
    hit_rate: f64,
}

fn key(i: usize) -> CacheKey {
    CacheKey::new("bench", format!("[{i}]"))
}

fn tags(i: usize) -> TagSet {
    [InvalidationTag::keyed("items", format!("id={i}"))]
        .into_iter()
        .collect()
}

/// Drives fill + hit + invalidation phases through one backend.
fn drive(label: &'static str, backend: &dyn CacheBackend, args: &Args) -> BackendReport {
    let value = Bytes::from(vec![0x5Au8; args.value_bytes]);

    // Fill phase: every key inserted once (remote: pipelined puts).
    let t0 = Instant::now();
    for i in 0..args.keys {
        backend.insert(
            key(i),
            value.clone(),
            ValidityInterval::unbounded(Timestamp(1)),
            tags(i),
            WallClock::ZERO,
        );
    }
    // Force outstanding pipelined acks to be collected so the fill phase is
    // fully accounted before timing lookups.
    let _ = backend.stats();
    let fill_secs = t0.elapsed().as_secs_f64();

    // Hit phase: uniform lookups over the filled keys, per-op latency
    // (captured in nanoseconds — in-process hits are far below 1 us).
    let request = LookupRequest::range(Timestamp(1), Timestamp(1));
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(args.ops);
    let t0 = Instant::now();
    for op in 0..args.ops {
        let k = key(op % args.keys);
        let t = Instant::now();
        let outcome = backend.lookup(&k, &request);
        latencies_ns.push(t.elapsed().as_nanos() as u64);
        assert!(outcome.is_hit(), "warm lookup must hit ({label})");
    }
    let hit_secs = t0.elapsed().as_secs_f64();

    // Batched-read phase: the same warm keys fetched MULTI_BATCH at a time
    // through lookup_many — on the remote backend one scatter-gather
    // MultiGet round trip per involved node instead of MULTI_BATCH serial
    // round trips.
    let multi_rounds = (args.ops / MULTI_BATCH).max(1);
    let mut multi_latencies_ns: Vec<u64> = Vec::with_capacity(multi_rounds);
    for round in 0..multi_rounds {
        let batch: Vec<CacheKey> = (0..MULTI_BATCH)
            .map(|j| key((round * MULTI_BATCH + j) % args.keys))
            .collect();
        let t = Instant::now();
        let outcomes = backend.lookup_many(&batch, &request);
        multi_latencies_ns.push(t.elapsed().as_nanos() as u64);
        assert!(
            outcomes.iter().all(cache_server::LookupOutcome::is_hit),
            "warm batched lookup must hit ({label})"
        );
    }

    // Invalidation phase: empty batches with advancing heartbeats measure
    // the fan-out cost of the stream.
    let inval_rounds = 1_000usize;
    let t0 = Instant::now();
    for round in 0..inval_rounds {
        backend.apply_invalidations(&[], Timestamp(2 + round as u64));
    }
    let inval_secs = t0.elapsed().as_secs_f64();

    latencies_ns.sort_unstable();
    let mean_ns = latencies_ns.iter().sum::<u64>() as f64 / latencies_ns.len() as f64;
    let p99_ns = latencies_ns[(latencies_ns.len() * 99 / 100).min(latencies_ns.len() - 1)];
    multi_latencies_ns.sort_unstable();
    let multi_mean_ns =
        multi_latencies_ns.iter().sum::<u64>() as f64 / multi_latencies_ns.len() as f64;
    let multi_p99_ns =
        multi_latencies_ns[(multi_latencies_ns.len() * 99 / 100).min(multi_latencies_ns.len() - 1)];

    let stats = backend.stats();
    BackendReport {
        label,
        fill_ops_per_sec: args.keys as f64 / fill_secs.max(1e-9),
        hit_mean_us: mean_ns / 1_000.0,
        hit_p99_us: p99_ns as f64 / 1_000.0,
        hit_ops_per_sec: args.ops as f64 / hit_secs.max(1e-9),
        multi_mean_us: multi_mean_ns / 1_000.0,
        multi_p99_us: multi_p99_ns as f64 / 1_000.0,
        invalidation_batches_per_sec: inval_rounds as f64 / inval_secs.max(1e-9),
        hit_rate: stats.hit_rate(),
    }
}

fn main() {
    let args = parse_args();

    println!(
        "# Loopback cache-protocol benchmark: {} node(s), {} keys, {} lookups, {} B values",
        args.nodes, args.keys, args.ops, args.value_bytes
    );

    // In-process backend.
    let in_process = CacheCluster::new(args.nodes, 64 << 20);
    let in_process_report = drive("in-process", &in_process, &args);

    // Remote backend over loopback TCP.
    let servers: Vec<TxcachedServer> = (0..args.nodes)
        .map(|i| {
            TxcachedServer::bind(
                "127.0.0.1:0",
                format!("bench-node-{i}"),
                NodeConfig {
                    capacity_bytes: 64 << 20,
                    ..NodeConfig::default()
                },
            )
            .expect("bind loopback txcached")
        })
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let remote = Arc::new(RemoteCluster::connect(&addrs).expect("connect loopback txcached"));
    let remote_report = drive("remote-tcp", remote.as_ref(), &args);

    // Single-node remote measurement for the protocol-efficiency gate: the
    // "one MultiGet frame vs one Get frame" ratio is a per-connection
    // property, and on hosts with fewer cores than nodes the multi-node
    // scatter's per-node round trips cannot overlap, which would charge
    // scheduling (not protocol) cost to the ratio.
    let single_report = if args.nodes > 1 {
        let single =
            Arc::new(RemoteCluster::connect(&addrs[..1]).expect("connect single loopback node"));
        let report = drive("remote-1node", single.as_ref(), &args);
        assert_eq!(single.degraded_ops(), 0, "loopback run must not degrade");
        Some(report)
    } else {
        None
    };

    println!();
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>14} {:>13} {:>13} {:>16}",
        "backend",
        "fill ops/s",
        "hit ops/s",
        "hit mean us",
        "hit p99 us",
        "m16 mean us",
        "m16 p99 us",
        "inval batch/s"
    );
    for r in [&in_process_report, &remote_report]
        .into_iter()
        .chain(single_report.as_ref())
    {
        println!(
            "{:<12} {:>14.0} {:>14.0} {:>12.2} {:>14.2} {:>13.2} {:>13.2} {:>16.0}",
            r.label,
            r.fill_ops_per_sec,
            r.hit_ops_per_sec,
            r.hit_mean_us,
            r.hit_p99_us,
            r.multi_mean_us,
            r.multi_p99_us,
            r.invalidation_batches_per_sec
        );
        assert!(
            (r.hit_rate - 1.0).abs() < 1e-9,
            "warm phase must be all hits"
        );
    }

    let slowdown = in_process_report.hit_ops_per_sec / remote_report.hit_ops_per_sec.max(1e-9);
    println!();
    println!(
        "protocol cost: TCP hit path is {slowdown:.1}x slower than in-process \
         ({:.2} us vs {:.2} us mean)",
        remote_report.hit_mean_us, in_process_report.hit_mean_us
    );
    println!(
        "scatter-gather ({} nodes): one {MULTI_BATCH}-key batch costs {:.2} us mean = {:.2}x \
         a single Get round trip ({:.2}x the serial cost of {MULTI_BATCH} Gets)",
        args.nodes,
        remote_report.multi_mean_us,
        remote_report.multi_mean_us / remote_report.hit_mean_us.max(1e-9),
        remote_report.multi_mean_us / (remote_report.hit_mean_us * MULTI_BATCH as f64).max(1e-9)
    );
    let gate = single_report.as_ref().unwrap_or(&remote_report);
    let multi_ratio = gate.multi_mean_us / gate.hit_mean_us.max(1e-9);
    println!(
        "protocol efficiency (one node, one connection): a {MULTI_BATCH}-key MultiGet frame \
         costs {multi_ratio:.2}x a single Get frame (gate: <= 2x)"
    );
    assert!(
        multi_ratio <= 2.0,
        "a {MULTI_BATCH}-key MultiGet must cost no more than 2x a single Get \
         (got {multi_ratio:.2}x)"
    );
    println!(
        "remote degraded ops: {} (must be 0 on loopback)",
        remote.degraded_ops()
    );
    assert_eq!(remote.degraded_ops(), 0, "loopback run must not degrade");
}
