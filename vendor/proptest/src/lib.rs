//! Offline subset of the `proptest` property-testing framework.
//!
//! Supports the combinators this workspace's property suites use: range and
//! regex-literal strategies, tuples, `prop_map`, `option::of`,
//! `collection::{vec, btree_set}`, `any::<T>()`, and the `proptest!` /
//! `prop_assert!` macros. Cases are generated from a deterministic seed per
//! test (no shrinking); set `PROPTEST_CASES` to change the case count.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for std::ops::Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut StdRng) -> $ty {
                        rand::RngExt::random_range(rng, self.clone())
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut StdRng) -> $ty {
                        rand::RngExt::random_range(rng, self.clone())
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rand::RngExt::random_range(rng, self.clone())
        }
    }

    /// String strategy from a regex-like pattern literal.
    ///
    /// Supports the subset used in this workspace: literal characters,
    /// character classes `[a-z0-9_]`, the any-char dot, and the quantifiers
    /// `{n}`, `{lo,hi}`, `?`, `*`, `+` (the unbounded ones capped at 8).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            crate::pattern::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($ty:ident . $n:tt),+),)*) => {
            $(
                impl<$($ty: Strategy),+> Strategy for ($($ty,)+) {
                    type Value = ($($ty::Value,)+);
                    fn sample(&self, rng: &mut StdRng) -> Self::Value {
                        ($(self.$n.sample(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    }

    /// Strategy for a fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

mod pattern {
    use rand::rngs::StdRng;
    use rand::RngExt;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
        Any,
    }

    /// Generates a string matching the supported regex subset.
    pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut chars = pattern.chars().peekable();
        let mut out = String::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    for member in chars.by_ref() {
                        match member {
                            ']' => break,
                            '-' if prev.is_some() => {
                                // Range like a-z: expand on the next char.
                                class.push('-');
                            }
                            m => {
                                if class.last() == Some(&'-') && prev.is_some() {
                                    class.pop();
                                    let start = prev.unwrap();
                                    for r in (start as u32 + 1)..=(m as u32) {
                                        if let Some(rc) = char::from_u32(r) {
                                            class.push(rc);
                                        }
                                    }
                                    prev = None;
                                } else {
                                    class.push(m);
                                    prev = Some(m);
                                }
                            }
                        }
                    }
                    if class.is_empty() {
                        class.push('a');
                    }
                    Atom::Class(class)
                }
                '.' => Atom::Any,
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                lit => Atom::Literal(lit),
            };

            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => {
                            (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                        }
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0usize, 1usize)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };

            let count = if lo == hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            };
            for _ in 0..count {
                out.push(match &atom {
                    Atom::Literal(c) => *c,
                    Atom::Class(class) => class[rng.random_range(0..class.len())],
                    // Printable ASCII, excluding the quote-ish edge cases the
                    // tests don't care about.
                    Atom::Any => char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap_or('x'),
                });
            }
        }
        out
    }
}

pub mod arbitrary {
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt};

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($ty:ty),*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut StdRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            )*
        };
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.random_range(-1.0e9..1.0e9)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> f32 {
            rng.random_range(-1.0e9..1.0e9) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> char {
            char::from_u32(rng.random_range(0x20u32..0x7f)).unwrap_or('x')
        }
    }
}

/// Strategy producing any value of `T` (via [`arbitrary::Arbitrary`]).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T`.
#[must_use]
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut rand::rngs::StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// Strategy for `Option<S::Value>`, `None` about a quarter of the time.
    pub struct OfStrategy<S>(S);

    /// Wraps `strategy` to generate optional values.
    pub fn of<S: Strategy>(strategy: S) -> OfStrategy<S> {
        OfStrategy(strategy)
    }

    impl<S: Strategy> Strategy for OfStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                0
            } else {
                rng.random_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet` with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn btree_set<S>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = if self.size.is_empty() {
                0
            } else {
                rng.random_range(self.size.clone())
            };
            let mut out = std::collections::BTreeSet::new();
            // Duplicates shrink the set; bound the retry budget.
            for _ in 0..target.saturating_mul(4) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases per property (override with `PROPTEST_CASES`).
    #[must_use]
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Deterministic per-test RNG derived from the test name.
    #[must_use]
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

/// Declares property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for _ in 0..$crate::test_runner::cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    // The inner loop scopes a user-level `break` (which real
                    // proptest permits to end a case early) to this case.
                    #[allow(clippy::never_loop)]
                    loop {
                        $body
                        break;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = rng_for("ranges");
        let strat = (0u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = rng_for("patterns");
        for _ in 0..50 {
            let s = "[a-c]{1}".sample(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(matches!(s.chars().next().unwrap(), 'a'..='c'));
            let t = ".{0,40}".sample(&mut rng);
            assert!(t.chars().count() <= 40);
        }
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = rng_for("collections");
        for _ in 0..50 {
            let v = crate::collection::vec(0u32..5, 1..12).sample(&mut rng);
            assert!(!v.is_empty() && v.len() < 12);
            let s = crate::collection::btree_set(0u64..100, 1..10).sample(&mut rng);
            assert!(s.len() < 10);
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_eq!(x + 1, 1 + x);
            }
        }
    }
}
