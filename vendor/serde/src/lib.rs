//! Offline, API-compatible subset of `serde` sufficient for this workspace.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the slice of serde's data model that the TxCache codec and the derived
//! model types actually exercise: the `Serialize`/`Deserialize` traits, the
//! full `Serializer`/`Deserializer`/`Visitor` trait surface, seeded and
//! enum access, and impls for the std types the codebase serializes.
//! Semantics (struct-as-seq, enums by variant index, newtype forwarding)
//! follow upstream serde so the code would compile unchanged against the
//! real crate.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

// Derive macros live in the `serde_derive` proc-macro crate; re-export them
// under the same names as the traits (they occupy the macro namespace).
pub use serde_derive::{Deserialize, Serialize};
