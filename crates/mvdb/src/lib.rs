//! # mvdb — a multiversion database substrate for TxCache
//!
//! This crate is the reproduction's stand-in for the paper's modified
//! PostgreSQL (§5). It is a from-scratch, in-memory, multiversion relational
//! engine that provides exactly the facilities the TxCache design needs from
//! its database:
//!
//! * **Snapshot isolation** over tuple versions stamped with the commit
//!   timestamps of their creating/deleting transactions (§5.1).
//! * **Pinned snapshots** — `PIN`/`UNPIN`/`BEGIN SNAPSHOTID` — so read-only
//!   transactions can run slightly in the past and still get consistent
//!   answers on cache misses (§5.1).
//! * **Per-query validity intervals**, computed from the result-tuple
//!   validity and the invalidity mask of visibility-failed tuples (§5.2).
//! * **Invalidation tags** assigned from the access methods in the query
//!   plan, and an ordered **invalidation stream** published when update
//!   transactions commit (§5.3).
//! * A simulated **buffer pool** so the harness can reproduce the paper's
//!   in-memory and disk-bound configurations.
//!
//! The query surface (programmatically-built selects with predicates, an
//! equi-join, ordering, limits and aggregates) covers what the RUBiS and
//! wiki-style workloads in this repository need; it is not a SQL parser.
//!
//! ```
//! use mvdb::{ColumnType, Database, Predicate, SelectQuery, TableSchema, Value};
//!
//! let db = Database::with_defaults();
//! db.create_table(
//!     TableSchema::new("users")
//!         .column("id", ColumnType::Int)
//!         .column("name", ColumnType::Text)
//!         .unique_index("id"),
//! )
//! .unwrap();
//! db.bulk_load("users", vec![vec![Value::Int(1), Value::text("alice")]]).unwrap();
//!
//! let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
//! let out = db.query_ro_once(&q).unwrap();
//! assert_eq!(out.result.get(0, "name").unwrap(), &Value::text("alice"));
//! // Every result carries a validity interval and invalidation tags:
//! assert!(out.result.validity.is_unbounded());
//! assert_eq!(out.result.tags.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod buffer;
pub mod db;
pub mod exec;
pub mod invalidation;
pub mod plan;
pub mod query;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod txn;
pub mod validity;
pub mod value;
pub mod wal;

pub use buffer::{BufferManager, BufferStats, PageAccess, SharedBuffer};
pub use db::{spawn_snapshotter, Database, DbConfig, OneShotQuery, Snapshotter};
pub use exec::{ExecOptions, PageCounts, QueryResult};
pub use invalidation::{InvalidationBus, InvalidationMessage};
pub use plan::{plan_query, AccessPath, QueryPlan};
pub use query::{Aggregate, CmpOp, Join, Predicate, SelectQuery, SortOrder};
pub use schema::{ColumnDef, IndexDef, TableSchema};
pub use snapshot::SnapshotId;
pub use stats::{AtomicDbStats, DbStats, ShardStats};
pub use table::Table;
pub use tuple::{RowId, Stamp, TupleVersion, TxnId};
pub use txn::{TxnMode, TxnToken};
pub use validity::ValidityTracker;
pub use value::{ColumnType, Value};
pub use wal::{CrashPoint, FsyncPolicy, RecoverOptions, RecoveryReport};
