//! Text rendering of experiment results as the paper's tables and figures.

use crate::concurrent::ConcurrentResult;
use crate::costmodel::Bottleneck;
use crate::experiment::ExperimentResult;

/// Formats a figure-5-style table: peak throughput as a function of cache
/// size, one column per mode/series.
#[must_use]
pub fn throughput_table(title: &str, series: &[(&str, Vec<(String, ExperimentResult)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:<14}", "cache size"));
    for (name, _) in series {
        out.push_str(&format!("{name:>18}"));
    }
    out.push('\n');
    let rows = series.first().map(|(_, v)| v.len()).unwrap_or(0);
    for i in 0..rows {
        let label = series[0].1[i].0.clone();
        out.push_str(&format!("{label:<14}"));
        for (_, points) in series {
            let value = points
                .get(i)
                .map(|(_, r)| r.peak_throughput)
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{value:>14.0} r/s"));
        }
        out.push('\n');
    }
    out
}

/// Formats a figure-6-style table: hit rate versus cache size.
#[must_use]
pub fn hit_rate_table(title: &str, points: &[(String, ExperimentResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!("{:<14}{:>12}\n", "cache size", "hit rate"));
    for (label, r) in points {
        out.push_str(&format!("{:<14}{:>11.1}%\n", label, r.hit_rate * 100.0));
    }
    out
}

/// Formats the figure-8 miss-breakdown table (percent of total misses).
#[must_use]
pub fn miss_breakdown_table(columns: &[(&str, ExperimentResult)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16}", "miss type"));
    for (name, _) in columns {
        out.push_str(&format!("{name:>22}"));
    }
    out.push('\n');
    type Extract = fn(&ExperimentResult) -> u64;
    let rows: [(&str, Extract); 4] = [
        ("Compulsory", |r| r.cache_stats.compulsory_misses),
        ("Staleness", |r| r.cache_stats.staleness_misses),
        ("Capacity", |r| r.cache_stats.capacity_misses),
        ("Consistency", |r| r.cache_stats.consistency_misses),
    ];
    for (label, extract) in rows {
        out.push_str(&format!("{label:<16}"));
        for (_, result) in columns {
            let total = result.cache_stats.misses().max(1) as f64;
            let pct = extract(result) as f64 / total * 100.0;
            out.push_str(&format!("{pct:>21.1}%"));
        }
        out.push('\n');
    }
    out
}

/// Formats a thread-scaling table from multi-threaded runs: measured
/// aggregate throughput, speedup over the first (typically single-threaded)
/// row, hit rate, and the per-interaction latency distribution.
#[must_use]
pub fn scalability_table(title: &str, results: &[ConcurrentResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:>8}{:>14}{:>10}{:>10}{:>12}{:>12}{:>12}{:>9}{:>9}\n",
        "threads",
        "txn/s",
        "speedup",
        "hit rate",
        "mean lat",
        "p95 lat",
        "p99 lat",
        "failed",
        "retried",
    ));
    let baseline = results.first();
    for r in results {
        let speedup = baseline.map_or(1.0, |b| r.speedup_over(b));
        out.push_str(&format!(
            "{:>8}{:>14.0}{:>9.2}x{:>9.1}%{:>10.0}us{:>10}us{:>10}us{:>9}{:>9}\n",
            r.threads,
            r.throughput_rps,
            speedup,
            r.hit_rate * 100.0,
            r.latency.mean_us(),
            r.latency.percentile_us(0.95),
            r.latency.percentile_us(0.99),
            r.failed,
            r.retried,
        ));
    }
    out
}

/// One line summarizing a result (used by several binaries).
#[must_use]
pub fn summary_line(label: &str, r: &ExperimentResult) -> String {
    let bottleneck = match r.bottleneck {
        Bottleneck::Database => "db",
        Bottleneck::WebServers => "web",
        Bottleneck::CacheNodes => "cache",
    };
    format!(
        "{label:<28} peak {:>8.0} req/s   hit rate {:>5.1}%   bottleneck {bottleneck:<5} misses[comp {} stale {} cap {} cons {}]",
        r.peak_throughput,
        r.hit_rate * 100.0,
        r.cache_stats.compulsory_misses,
        r.cache_stats.staleness_misses,
        r.cache_stats.capacity_misses,
        r.cache_stats.consistency_misses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::ResourceUsage;
    use crate::experiment::{DbKind, ExperimentConfig};
    use cache_server::CacheStats;

    fn fake(peak: f64) -> ExperimentResult {
        ExperimentResult {
            config: ExperimentConfig::new(DbKind::InMemory),
            peak_throughput: peak,
            bottleneck: Bottleneck::Database,
            hit_rate: 0.5,
            usage: ResourceUsage::default(),
            cache_stats: CacheStats {
                compulsory_misses: 3,
                staleness_misses: 2,
                capacity_misses: 4,
                consistency_misses: 1,
                ..CacheStats::default()
            },
            failed_requests: 0,
            retried_requests: 0,
        }
    }

    #[test]
    fn tables_render_all_rows_and_columns() {
        let series = vec![
            ("TxCache", vec![("64MB".to_string(), fake(2000.0))]),
            ("No caching", vec![("64MB".to_string(), fake(900.0))]),
        ];
        let t = throughput_table("Figure 5(a)", &series);
        assert!(t.contains("Figure 5(a)"));
        assert!(t.contains("64MB"));
        assert!(t.contains("2000"));
        assert!(t.contains("900"));

        let h = hit_rate_table("Figure 6(a)", &[("64MB".to_string(), fake(1.0))]);
        assert!(h.contains("50.0%"));

        let m = miss_breakdown_table(&[("512MB/30s", fake(1.0))]);
        assert!(m.contains("Consistency"));
        assert!(m.contains("10.0%"), "1 of 10 misses: {m}");

        assert!(summary_line("x", &fake(1.0)).contains("hit rate"));
    }
}
