//! Durability tests for mvdb's WAL + snapshot subsystem: torn-write
//! recovery at every byte offset of the final record, the crash-point
//! matrix verified against the harness history checker's ground truth,
//! newest-*valid*-snapshot selection with fallback past a corrupt file,
//! replay idempotence, watermark restoration, and the fsync policies' loss
//! semantics.
//!
//! Every test works on a scratch directory under the system temp dir and
//! recovers real files written by the real commit path — no mocked I/O.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use txcache_repro::harness::history::{CommitRecord, History, ReadRecord};
use txcache_repro::mvdb::{
    wal, ColumnType, CrashPoint, Database, DbConfig, FsyncPolicy, Predicate, SelectQuery,
    TableSchema, Value,
};
use txcache_repro::txtypes::{SimClock, Timestamp};

const ACCOUNTS: u64 = 4;
const INITIAL_BALANCE: i64 = 100;
/// Staleness bound for recorded reads: wide enough that the staleness-floor
/// invariant never bites (these tests pin exact values instead).
const AN_HOUR_US: u64 = 3_600_000_000;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique, initially-absent scratch directory for one durable database.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mvdb-durability-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(fsync: FsyncPolicy) -> DbConfig {
    DbConfig {
        fsync,
        ..DbConfig::default()
    }
}

/// Opens a fresh durable database in `dir` with the accounts table loaded.
fn seed(dir: &Path, fsync: FsyncPolicy, clock: &SimClock) -> Database {
    let db = Database::open_durable(dir, config(fsync), clock.clone()).unwrap();
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )
    .unwrap();
    db.bulk_load(
        "accounts",
        (0..ACCOUNTS)
            .map(|id| vec![Value::Int(id as i64), Value::Int(INITIAL_BALANCE)])
            .collect(),
    )
    .unwrap();
    db
}

fn balance(db: &Database, id: u64) -> i64 {
    let q = SelectQuery::table("accounts").filter(Predicate::eq("id", id as i64));
    db.query_ro_once(&q)
        .unwrap()
        .result
        .get(0, "balance")
        .unwrap()
        .as_int()
        .unwrap()
}

/// One committed balance bump; returns the commit timestamp and the new
/// balance.
fn bump(db: &Database, clock: &SimClock, id: u64, delta: i64) -> (Timestamp, i64) {
    clock.advance_micros(1_000);
    let token = db.begin_rw().unwrap();
    let q = SelectQuery::table("accounts").filter(Predicate::eq("id", id as i64));
    let bal = db
        .query(token, &q)
        .unwrap()
        .get(0, "balance")
        .unwrap()
        .as_int()
        .unwrap();
    let next = bal + delta;
    db.update(
        token,
        "accounts",
        &Predicate::eq("id", id as i64),
        &[("balance".to_string(), Value::Int(next))],
    )
    .unwrap();
    let ts = db.commit(token).unwrap();
    (ts, next)
}

/// A bump that is also recorded into the history's ground truth.
fn recorded_bump(
    db: &Database,
    clock: &SimClock,
    history: &mut History,
    id: u64,
    delta: i64,
) -> (Timestamp, i64) {
    let (ts, value) = bump(db, clock, id, delta);
    history.record_commit(CommitRecord {
        timestamp: ts,
        wall: clock.now(),
        writes: vec![(id, value)],
    });
    (ts, value)
}

/// Reads every account through its own read-only transaction, records what
/// it saw, and runs the history checker over everything recorded so far.
fn observe_and_check(db: &Database, clock: &SimClock, history: &mut History) {
    for id in 0..ACCOUNTS {
        let begin_latest = db.latest_timestamp();
        let begin_wall = clock.now();
        let q = SelectQuery::table("accounts").filter(Predicate::eq("id", id as i64));
        let out = db.query_ro_once(&q).unwrap();
        let value = out.result.get(0, "balance").unwrap().as_int().unwrap();
        history.record_read_txn(ReadRecord {
            session: 0,
            begin_latest,
            begin_wall,
            staleness_micros: AN_HOUR_US,
            snapshot: out.snapshot,
            reads: vec![(id, value)],
        });
    }
    if let Err(violations) = history.check() {
        panic!("post-recovery reads violate the recorded history: {violations:?}");
    }
}

// ----------------------------------------------------------------------
// Torn-write recovery
// ----------------------------------------------------------------------

/// Truncating the WAL at *every* byte offset inside the final record must
/// recover exactly the commits before it: a torn tail is silently dropped,
/// never misread, and never takes a fully-written commit with it.
#[test]
fn torn_wal_tail_recovers_the_exact_durable_prefix() {
    let dir = scratch_dir("torn");
    let clock = SimClock::new();
    let db = seed(&dir, FsyncPolicy::Always, &clock);

    let mut ends = Vec::new(); // WAL length after each bump commit
    let mut stamps = Vec::new();
    for i in 0..5u64 {
        let (ts, _) = bump(&db, &clock, i % ACCOUNTS, 7);
        ends.push(db.wal_bytes());
        stamps.push(ts);
    }
    // Balances as of the 4th bump (the state every torn cut must recover).
    let prefix_balances: Vec<i64> = {
        // Bumps hit accounts 0,1,2,3,0 in order; after 4 bumps each account
        // was bumped exactly once.
        (0..ACCOUNTS).map(|_| INITIAL_BALANCE + 7).collect()
    };
    drop(db);

    let wal_bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap();
    assert_eq!(wal_bytes.len() as u64, *ends.last().unwrap());
    let base = ends[3]; // end of the 4th bump = start of the final record
    let full = ends[4];

    let cut_dir = scratch_dir("torn-cut");
    std::fs::create_dir_all(&cut_dir).unwrap();
    for cut in base..full {
        std::fs::write(cut_dir.join(wal::WAL_FILE), &wal_bytes[..cut as usize]).unwrap();
        let rec = Database::recover(&cut_dir, config(FsyncPolicy::Always), clock.clone())
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let report = rec.recovery_report().unwrap();
        // CreateTable + bulk-load commit + 4 bumps survive; the torn record
        // is dropped byte-for-byte.
        assert_eq!(report.replayed_commits, 5, "cut {cut}");
        assert_eq!(report.truncated_bytes, cut - base, "cut {cut}");
        assert_eq!(rec.latest_timestamp(), stamps[3], "cut {cut}");
        for id in 0..ACCOUNTS {
            assert_eq!(balance(&rec, id), prefix_balances[id as usize], "cut {cut}");
        }
    }

    // The untruncated log recovers all five bumps.
    std::fs::write(cut_dir.join(wal::WAL_FILE), &wal_bytes).unwrap();
    let rec = Database::recover(&cut_dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    assert_eq!(rec.recovery_report().unwrap().replayed_commits, 6);
    assert_eq!(rec.latest_timestamp(), stamps[4]);
    assert_eq!(balance(&rec, 0), INITIAL_BALANCE + 14);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cut_dir);
}

proptest! {
    /// Property form: for a random commit count and a random cut anywhere
    /// past the bulk load, recovery yields exactly the commits whose
    /// records fit inside the cut — and recovering the same prefix twice
    /// yields bit-identical state digests (replay is idempotent).
    #[test]
    fn torn_tail_recovery_is_prefix_consistent(
        commits in 1usize..5,
        cut_permille in 0u64..=1000,
    ) {
        let dir = scratch_dir("torn-prop");
        let clock = SimClock::new();
        let db = seed(&dir, FsyncPolicy::Always, &clock);
        let seed_end = db.wal_bytes();
        let mut ends = Vec::new();
        let mut stamps = Vec::new();
        for i in 0..commits {
            let (ts, _) = bump(&db, &clock, i as u64 % ACCOUNTS, 3);
            ends.push(db.wal_bytes());
            stamps.push(ts);
        }
        let full = *ends.last().unwrap();
        drop(db);

        let cut = seed_end + (full - seed_end) * cut_permille / 1000;
        let wal_bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap();
        let cut_dir = scratch_dir("torn-prop-cut");
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(cut_dir.join(wal::WAL_FILE), &wal_bytes[..cut as usize]).unwrap();

        let expected = ends.iter().filter(|&&end| end <= cut).count();
        let rec = Database::recover(&cut_dir, config(FsyncPolicy::Always), clock.clone())
            .unwrap();
        let report = rec.recovery_report().unwrap();
        // +1 for the bulk-load commit, always inside the cut.
        prop_assert_eq!(report.replayed_commits, expected + 1);
        let expected_latest = if expected == 0 {
            rec.latest_timestamp() // the bulk-load commit's stamp
        } else {
            stamps[expected - 1]
        };
        prop_assert_eq!(rec.latest_timestamp(), expected_latest);
        let digest = rec.state_digest();
        drop(rec);

        let again = Database::recover(&cut_dir, config(FsyncPolicy::Always), clock.clone())
            .unwrap();
        prop_assert_eq!(again.state_digest(), digest);
        drop(again);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cut_dir);
    }
}

// ----------------------------------------------------------------------
// Crash-point matrix
// ----------------------------------------------------------------------

/// Crash before the fsync: the commit errors at the client AND is absent
/// after recovery — a never-acknowledged commit may be lost, and the
/// history checker agrees the recovered state is consistent without it.
#[test]
fn pre_fsync_crash_loses_the_unacked_commit() {
    let dir = scratch_dir("prefsync");
    let clock = SimClock::new();
    let mut history = History::new((0..ACCOUNTS).map(|id| (id, INITIAL_BALANCE)));
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    let (ts1, _) = recorded_bump(&db, &clock, &mut history, 0, 5);

    db.set_crash_point(CrashPoint::PreFsync);
    clock.advance_micros(1_000);
    let token = db.begin_rw().unwrap();
    db.update(
        token,
        "accounts",
        &Predicate::eq("id", 1i64),
        &[("balance".to_string(), Value::Int(INITIAL_BALANCE + 9))],
    )
    .unwrap();
    assert!(
        db.commit(token).is_err(),
        "the commit must error at the crash point"
    );
    assert!(db.is_crashed());

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    assert_eq!(
        rec.latest_timestamp(),
        ts1,
        "the unfsynced commit must not survive"
    );
    assert_eq!(balance(&rec, 1), INITIAL_BALANCE);
    // The lost commit is NOT in the ground truth; post-recovery reads must
    // still check out.
    observe_and_check(&rec, &clock, &mut history);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash after the fsync but before the acknowledgment: the commit errors
/// at the client but IS present after recovery — the classic unknown-
/// outcome window resolves to "committed", and the ground truth must
/// include it for the post-recovery reads to check out.
#[test]
fn post_fsync_crash_preserves_the_unacked_commit() {
    let dir = scratch_dir("postfsync");
    let clock = SimClock::new();
    let mut history = History::new((0..ACCOUNTS).map(|id| (id, INITIAL_BALANCE)));
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    let (ts1, _) = recorded_bump(&db, &clock, &mut history, 0, 5);

    db.set_crash_point(CrashPoint::PostFsyncPreAck);
    clock.advance_micros(1_000);
    let attempt_wall = clock.now();
    let token = db.begin_rw().unwrap();
    db.update(
        token,
        "accounts",
        &Predicate::eq("id", 1i64),
        &[("balance".to_string(), Value::Int(INITIAL_BALANCE + 9))],
    )
    .unwrap();
    assert!(
        db.commit(token).is_err(),
        "the commit must error at the crash point"
    );
    assert!(db.is_crashed());

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let ts2 = rec.latest_timestamp();
    assert!(ts2 > ts1, "the fsynced commit must survive recovery");
    assert_eq!(balance(&rec, 1), INITIAL_BALANCE + 9);
    // Resolve the unknown outcome in the ground truth: it committed.
    history.record_commit(CommitRecord {
        timestamp: ts2,
        wall: attempt_wall,
        writes: vec![(1, INITIAL_BALANCE + 9)],
    });
    observe_and_check(&rec, &clock, &mut history);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash between the snapshot temp-file write and the atomic rename: the
/// half-written `.tmp` file is left behind and recovery must ignore it,
/// replaying the full WAL instead.
#[test]
fn mid_snapshot_crash_leaves_an_ignored_temp_file() {
    let dir = scratch_dir("midsnap");
    let clock = SimClock::new();
    let mut history = History::new((0..ACCOUNTS).map(|id| (id, INITIAL_BALANCE)));
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    for i in 0..3u64 {
        recorded_bump(&db, &clock, &mut history, i % ACCOUNTS, 11);
    }
    let latest = db.latest_timestamp();

    db.set_crash_point(CrashPoint::MidSnapshot);
    assert!(
        db.snapshot_now().is_err(),
        "the snapshot must die mid-write"
    );
    assert!(db.is_crashed());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
        .collect();
    assert!(
        !leftovers.is_empty(),
        "the crash must leave the half-written temp file behind"
    );

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    assert_eq!(
        report.snapshot_ts, None,
        "a temp file must never be treated as a snapshot"
    );
    assert_eq!(report.snapshots_skipped, 0);
    assert_eq!(report.replayed_commits, 4); // bulk load + 3 bumps
    assert_eq!(rec.latest_timestamp(), latest);
    observe_and_check(&rec, &clock, &mut history);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash after the snapshot is renamed into place but before the WAL is
/// compacted: recovery starts from the snapshot and must skip (not
/// re-apply) the WAL prefix the snapshot already covers.
#[test]
fn post_snapshot_crash_skips_the_covered_wal_prefix() {
    let dir = scratch_dir("postsnap");
    let clock = SimClock::new();
    let mut history = History::new((0..ACCOUNTS).map(|id| (id, INITIAL_BALANCE)));
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    for i in 0..3u64 {
        recorded_bump(&db, &clock, &mut history, i % ACCOUNTS, 11);
    }
    let latest = db.latest_timestamp();
    let wal_before = db.wal_bytes();

    db.set_crash_point(CrashPoint::PostSnapshotPreTruncate);
    assert!(
        db.snapshot_now().is_err(),
        "the crash fires after the rename, before compaction"
    );
    assert!(db.is_crashed());
    assert_eq!(
        std::fs::metadata(dir.join(wal::WAL_FILE)).unwrap().len(),
        wal_before,
        "the WAL must be left uncompacted"
    );

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    assert_eq!(
        report.snapshot_ts,
        Some(latest),
        "the renamed snapshot must be used"
    );
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(
        report.skipped_commits, 4,
        "every WAL commit predates the snapshot and must be skipped"
    );
    assert_eq!(rec.latest_timestamp(), latest);
    observe_and_check(&rec, &clock, &mut history);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Snapshot selection and idempotence
// ----------------------------------------------------------------------

/// A corrupt newest snapshot is skipped, recovery falls back to the older
/// one and replays a longer WAL tail — ending at exactly the same state a
/// recovery with the healthy snapshot produces.
#[test]
fn corrupt_newest_snapshot_falls_back_and_replays_more() {
    let dir = scratch_dir("fallback");
    let clock = SimClock::new();
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    bump(&db, &clock, 0, 1);
    bump(&db, &clock, 1, 2);
    let s1_ts = db.latest_timestamp();
    db.snapshot_now().unwrap();
    bump(&db, &clock, 2, 3);
    bump(&db, &clock, 3, 4);
    let s2_ts = db.latest_timestamp();
    let s2_path = db.snapshot_now().unwrap();
    let (_, tail_value) = bump(&db, &clock, 0, 5);
    db.simulate_crash();

    // Healthy recovery first: the newest snapshot plus the one-commit tail.
    let healthy = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let healthy_report = healthy.recovery_report().unwrap();
    assert_eq!(healthy_report.snapshot_ts, Some(s2_ts));
    assert_eq!(healthy_report.snapshots_skipped, 0);
    assert_eq!(healthy_report.replayed_commits, 1);
    let healthy_digest = healthy.state_digest();
    drop(healthy);

    // Corrupt the newest snapshot's tail (checksum breaks) and recover
    // again: fallback to the older snapshot, longer replay, same state.
    let mut snap = std::fs::read(&s2_path).unwrap();
    let last = snap.len() - 1;
    snap[last] ^= 0xFF;
    std::fs::write(&s2_path, &snap).unwrap();

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    assert_eq!(
        report.snapshots_skipped, 1,
        "the corrupt snapshot is skipped"
    );
    assert_eq!(report.snapshot_ts, Some(s1_ts), "fallback to the older one");
    assert_eq!(
        report.replayed_commits, 3,
        "the two commits between the snapshots plus the tail commit"
    );
    assert_eq!(balance(&rec, 0), tail_value);
    assert_eq!(
        rec.state_digest(),
        healthy_digest,
        "fallback recovery must reconstruct the identical state"
    );
    let digest = rec.state_digest();
    drop(rec);

    // Idempotence: recovering the same directory again changes nothing.
    let again = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    assert_eq!(again.state_digest(), digest);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Latent-bug audit: recovered latest and watermark
// ----------------------------------------------------------------------

/// The recovered `latest` timestamp must bound every replayed commit — a
/// client of the recovered database can never be handed a snapshot that
/// excludes a committed-and-recovered write — and the next commit must
/// stamp strictly above it (timestamps never repeat across a crash).
#[test]
fn recovered_latest_bounds_every_replayed_commit() {
    let dir = scratch_dir("latest");
    let clock = SimClock::new();
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    let mut stamps = Vec::new();
    for i in 0..6u64 {
        stamps.push(bump(&db, &clock, i % ACCOUNTS, 1).0);
    }
    db.simulate_crash();

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    for ts in &stamps {
        assert!(
            report.recovered_latest >= *ts,
            "recovered latest {} excludes replayed commit {}",
            report.recovered_latest,
            ts
        );
    }
    assert_eq!(rec.latest_timestamp(), report.recovered_latest);
    let (next, _) = bump(&rec, &clock, 0, 1);
    assert!(
        next > report.recovered_latest,
        "post-recovery commits must stamp above the recovered latest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The vacuum watermark survives recovery: versions below it were swept
/// before the crash, so a recovered database must keep refusing pins below
/// it exactly as the pre-crash one did.
#[test]
fn pins_below_the_recovered_watermark_are_refused() {
    let dir = scratch_dir("watermark");
    let clock = SimClock::new();
    let db = seed(&dir, FsyncPolicy::Always, &clock);
    for i in 0..3u64 {
        bump(&db, &clock, i % ACCOUNTS, 1);
    }
    let horizon = db.latest_timestamp();
    db.vacuum();
    // The watermark record carries no durability wait of its own; the next
    // committed bump's fsync covers it.
    let (after, _) = bump(&db, &clock, 0, 1);
    db.simulate_crash();

    let rec = Database::recover(&dir, config(FsyncPolicy::Always), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    assert_eq!(report.recovered_watermark, horizon);
    assert!(
        rec.pin(Timestamp(horizon.0 - 1)).is_err(),
        "pins below the recovered watermark must be refused"
    );
    assert!(rec.pin(horizon).is_ok(), "the watermark itself is pinnable");
    assert!(rec.pin(after).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Fsync policies
// ----------------------------------------------------------------------

/// `FsyncPolicy::Never` is honest about its loss semantics: nothing is
/// ever promised, so a crash wipes the entire log — including the schema.
#[test]
fn never_policy_loses_everything_on_crash() {
    let dir = scratch_dir("never");
    let clock = SimClock::new();
    let db = seed(&dir, FsyncPolicy::Never, &clock);
    for i in 0..3u64 {
        bump(&db, &clock, i % ACCOUNTS, 1);
    }
    assert_eq!(db.stats().wal_fsyncs, 0, "Never must not fsync");
    db.simulate_crash();

    let rec = Database::recover(&dir, config(FsyncPolicy::Never), clock.clone()).unwrap();
    let report = rec.recovery_report().unwrap();
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(rec.latest_timestamp(), Timestamp::ZERO);
    assert!(
        rec.table_names().is_empty(),
        "an un-fsynced CreateTable vanishes with the rest"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group commit batches concurrent committers into fewer fsyncs: with all
/// writers parked at the commit point before any of them proceeds, the
/// dallying leader's single sync must cover followers.
#[test]
fn group_commit_issues_fewer_fsyncs_than_commits() {
    let dir = scratch_dir("group");
    let clock = SimClock::new();
    let db = Arc::new(seed(
        &dir,
        FsyncPolicy::GroupCommit { max_wait_us: 5_000 },
        &clock,
    ));
    let writers = 8usize;
    let barrier = Arc::new(std::sync::Barrier::new(writers));
    let mut handles = Vec::new();
    for i in 0..writers {
        let db = Arc::clone(&db);
        let clock = clock.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            // Each writer inserts its own fresh row so no two transactions
            // ever touch the same version (a write-write conflict would
            // block one writer behind another that is parked at the
            // barrier).
            let id = 100 + i as i64;
            let token = db.begin_rw().unwrap();
            db.insert(token, "accounts", vec![Value::Int(id), Value::Int(1)])
                .unwrap();
            let _ = clock;
            barrier.wait();
            db.commit(token).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.wal_appends, 2 + writers as u64); // schema + bulk + commits
    assert!(
        stats.wal_fsyncs < stats.wal_appends,
        "group commit must batch at least once: {} fsyncs for {} appends",
        stats.wal_fsyncs,
        stats.wal_appends
    );
    let _ = std::fs::remove_dir_all(&dir);
}
