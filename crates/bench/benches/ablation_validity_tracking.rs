//! §8.1 ablation: per-query cost of the database-side TxCache support
//! (validity-interval tracking + invalidation-tag assignment) versus a stock
//! database with the machinery disabled. The paper reports no observable
//! difference; the two cases here should be within a few percent.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mvdb::{Database, DbConfig, ExecOptions, Predicate, SelectQuery, Value};
use rubis::RubisScale;
use txtypes::SimClock;

fn build_db(track_validity: bool) -> Database {
    let db = Database::new(
        DbConfig {
            exec: ExecOptions {
                track_validity,
                predicate_before_visibility: true,
            },
            ..DbConfig::default()
        },
        SimClock::new(),
    );
    rubis::create_tables(&db).unwrap();
    rubis::populate(&db, &RubisScale::tiny(), 1).unwrap();
    db
}

fn bench_validity_tracking(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_query");
    group.sample_size(30);
    for (name, track) in [
        ("stock (tracking off)", false),
        ("modified (tracking on)", true),
    ] {
        let db = build_db(track);
        group.bench_function(name, |b| {
            b.iter_batched(
                || SelectQuery::table("items").filter(Predicate::eq("id", 17i64)),
                |q| {
                    let out = db.query_ro_once(&q).unwrap();
                    assert_eq!(out.result.get(0, "id").unwrap(), &Value::Int(17));
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validity_tracking);
criterion_main!(benches);
