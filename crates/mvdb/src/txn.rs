//! Transaction state.
//!
//! The database distinguishes read-only transactions — which run at a
//! (possibly pinned, possibly past) snapshot and never write — from
//! read/write transactions, which run under snapshot isolation with eager
//! first-updater-wins conflict detection. Read/write transactions accumulate
//! the invalidation tags of everything they modify; the tags are published on
//! the invalidation stream when the transaction commits (§5.3).

use std::collections::HashMap;

use txtypes::{TagSet, Timestamp};

use crate::table::Slot;
use crate::tuple::{RowId, TxnId};

/// Whether a transaction may write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnMode {
    /// Read-only; may run at a pinned past snapshot.
    ReadOnly,
    /// Read/write; runs at the latest snapshot as of `BEGIN`.
    ReadWrite,
}

/// The database-side record of an in-progress transaction.
#[derive(Debug)]
pub struct Transaction {
    /// Transaction identifier.
    pub id: TxnId,
    /// Read-only or read/write.
    pub mode: TxnMode,
    /// The snapshot timestamp the transaction reads at.
    pub snapshot: Timestamp,
    /// Heap slots of versions this transaction created, per table.
    pub created_slots: Vec<(String, Slot)>,
    /// Heap slots of versions this transaction marked deleted, per table.
    pub deleted_slots: Vec<(String, Slot)>,
    /// Rows written (for conflict bookkeeping and diagnostics).
    pub written_rows: Vec<(String, RowId)>,
    /// Invalidation tags accumulated from writes.
    pub pending_tags: TagSet,
    /// Number of rows modified per table, used to decide whether to collapse
    /// a table's tags into a single wildcard at commit time.
    pub rows_modified: HashMap<String, usize>,
}

impl Transaction {
    /// Creates a new transaction record.
    #[must_use]
    pub fn new(id: TxnId, mode: TxnMode, snapshot: Timestamp) -> Transaction {
        Transaction {
            id,
            mode,
            snapshot,
            created_slots: Vec::new(),
            deleted_slots: Vec::new(),
            written_rows: Vec::new(),
            pending_tags: TagSet::new(),
            rows_modified: HashMap::new(),
        }
    }

    /// Returns `true` if the transaction has made any modifications.
    #[must_use]
    pub fn has_writes(&self) -> bool {
        !self.created_slots.is_empty() || !self.deleted_slots.is_empty()
    }

    /// Records that a row in `table` was modified.
    pub fn note_row_modified(&mut self, table: &str) {
        *self.rows_modified.entry(table.to_string()).or_insert(0) += 1;
    }

    /// The names of all tables this transaction wrote, sorted and
    /// deduplicated. Commit and abort acquire table locks in exactly this
    /// order, which is what makes cross-table write transactions
    /// deadlock-free.
    #[must_use]
    pub fn touched_tables(&self) -> Vec<String> {
        let mut tables: Vec<String> = self
            .created_slots
            .iter()
            .chain(self.deleted_slots.iter())
            .map(|(table, _)| table.clone())
            .collect();
        tables.sort();
        tables.dedup();
        tables
    }
}

/// An opaque handle the application holds for an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnToken(pub TxnId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_transaction_is_clean() {
        let t = Transaction::new(1, TxnMode::ReadWrite, Timestamp(5));
        assert!(!t.has_writes());
        assert!(t.pending_tags.is_empty());
        assert_eq!(t.snapshot, Timestamp(5));
    }

    #[test]
    fn note_row_modified_counts_per_table() {
        let mut t = Transaction::new(1, TxnMode::ReadWrite, Timestamp(5));
        t.note_row_modified("items");
        t.note_row_modified("items");
        t.note_row_modified("users");
        assert_eq!(t.rows_modified["items"], 2);
        assert_eq!(t.rows_modified["users"], 1);
    }

    #[test]
    fn has_writes_tracks_slots() {
        let mut t = Transaction::new(1, TxnMode::ReadWrite, Timestamp(5));
        t.created_slots.push(("items".into(), 3));
        assert!(t.has_writes());
    }

    #[test]
    fn touched_tables_is_sorted_and_deduplicated() {
        let mut t = Transaction::new(1, TxnMode::ReadWrite, Timestamp(5));
        t.created_slots.push(("zebra".into(), 1));
        t.created_slots.push(("apple".into(), 2));
        t.deleted_slots.push(("zebra".into(), 3));
        t.deleted_slots.push(("mango".into(), 4));
        assert_eq!(t.touched_tables(), vec!["apple", "mango", "zebra"]);
        assert!(Transaction::new(2, TxnMode::ReadOnly, Timestamp(5))
            .touched_tables()
            .is_empty());
    }
}
