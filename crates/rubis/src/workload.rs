//! The RUBiS client emulator (§8).
//!
//! The benchmark drives the application with many concurrent user sessions.
//! Each session walks a Markov chain over the 26 RUBiS interactions; the
//! standard "bidding" workload is roughly 85% read-only interactions
//! (browsing) and 15% read/write interactions (placing bids, commenting,
//! registering), with exponentially distributed think times of 7 seconds mean
//! between interactions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use txcache::CommitInfo;
use txtypes::{Result, Staleness};

use crate::app::RubisApp;
use crate::schema::RubisScale;

/// The 26 RUBiS user interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Interaction {
    Home,
    Register,
    RegisterUser,
    Browse,
    BrowseCategories,
    SearchItemsInCategory,
    BrowseRegions,
    BrowseCategoriesInRegion,
    SearchItemsInRegion,
    ViewItem,
    ViewUserInfo,
    ViewBidHistory,
    BuyNowAuth,
    BuyNow,
    StoreBuyNow,
    PutBidAuth,
    PutBid,
    StoreBid,
    PutCommentAuth,
    PutComment,
    StoreComment,
    SellItemForm,
    SellItemCategory,
    RegisterItem,
    AboutMeAuth,
    AboutMe,
}

impl Interaction {
    /// All interactions, in a stable order.
    pub const ALL: [Interaction; 26] = [
        Interaction::Home,
        Interaction::Register,
        Interaction::RegisterUser,
        Interaction::Browse,
        Interaction::BrowseCategories,
        Interaction::SearchItemsInCategory,
        Interaction::BrowseRegions,
        Interaction::BrowseCategoriesInRegion,
        Interaction::SearchItemsInRegion,
        Interaction::ViewItem,
        Interaction::ViewUserInfo,
        Interaction::ViewBidHistory,
        Interaction::BuyNowAuth,
        Interaction::BuyNow,
        Interaction::StoreBuyNow,
        Interaction::PutBidAuth,
        Interaction::PutBid,
        Interaction::StoreBid,
        Interaction::PutCommentAuth,
        Interaction::PutComment,
        Interaction::StoreComment,
        Interaction::SellItemForm,
        Interaction::SellItemCategory,
        Interaction::RegisterItem,
        Interaction::AboutMeAuth,
        Interaction::AboutMe,
    ];

    /// Whether the interaction only reads (and therefore runs as a read-only,
    /// cacheable transaction).
    #[must_use]
    pub fn is_read_only(self) -> bool {
        !matches!(
            self,
            Interaction::RegisterUser
                | Interaction::StoreBuyNow
                | Interaction::StoreBid
                | Interaction::StoreComment
                | Interaction::RegisterItem
        )
    }
}

/// The outcome of one emulated interaction.
#[derive(Debug, Clone, Copy)]
pub struct InteractionReport {
    /// Which interaction ran.
    pub interaction: Interaction,
    /// The transaction's commit report (timestamps, query and cache counts).
    pub commit: CommitInfo,
    /// Whether the transaction had to be retried due to a write conflict.
    pub retried: bool,
}

/// Workload parameters for the bidding mix.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Staleness limit used for read-only transactions.
    pub staleness: Staleness,
    /// Mean think time between interactions, in microseconds (the standard
    /// workload uses a 7-second negative-exponential distribution).
    pub mean_think_time_micros: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            staleness: Staleness::seconds(30),
            mean_think_time_micros: 7_000_000,
        }
    }
}

/// One emulated user session.
#[derive(Debug)]
pub struct ClientSession {
    rng: StdRng,
    scale: RubisScale,
    config: WorkloadConfig,
    user_id: i64,
    last: Interaction,
}

impl ClientSession {
    /// Creates a session with its own deterministic random stream.
    #[must_use]
    pub fn new(seed: u64, scale: RubisScale, config: WorkloadConfig) -> ClientSession {
        let mut rng = StdRng::seed_from_u64(seed);
        let user_id = rng.random_range(1..=scale.users.max(1) as i64);
        ClientSession {
            rng,
            scale,
            config,
            user_id,
            last: Interaction::Home,
        }
    }

    /// The session's logged-in user.
    #[must_use]
    pub fn user_id(&self) -> i64 {
        self.user_id
    }

    /// Samples the next think time (negative-exponential with the configured
    /// mean).
    pub fn think_time_micros(&mut self) -> u64 {
        let u: f64 = self.rng.random_range(f64::EPSILON..1.0);
        let mean = self.config.mean_think_time_micros as f64;
        (-mean * u.ln()) as u64
    }

    /// Chooses the next interaction according to the bidding-mix transition
    /// weights (≈85% read-only).
    pub fn next_interaction(&mut self) -> Interaction {
        use Interaction::*;
        // (interaction, weight) pairs; weights approximate the RUBiS bidding
        // mix transition matrix collapsed to a stationary distribution.
        const WEIGHTS: &[(Interaction, u32)] = &[
            (Home, 6),
            (Register, 1),
            (RegisterUser, 1),
            (Browse, 8),
            (BrowseCategories, 8),
            (SearchItemsInCategory, 18),
            (BrowseRegions, 4),
            (BrowseCategoriesInRegion, 4),
            (SearchItemsInRegion, 6),
            (ViewItem, 16),
            (ViewUserInfo, 5),
            (ViewBidHistory, 4),
            (BuyNowAuth, 1),
            (BuyNow, 1),
            (StoreBuyNow, 1),
            (PutBidAuth, 3),
            (PutBid, 3),
            (StoreBid, 6),
            (PutCommentAuth, 1),
            (PutComment, 1),
            (StoreComment, 2),
            (SellItemForm, 1),
            (SellItemCategory, 1),
            (RegisterItem, 2),
            (AboutMeAuth, 1),
            (AboutMe, 3),
        ];
        let total: u32 = WEIGHTS.iter().map(|(_, w)| w).sum();
        let mut pick = self.rng.random_range(0..total);
        for (interaction, weight) in WEIGHTS {
            if pick < *weight {
                self.last = *interaction;
                return *interaction;
            }
            pick -= weight;
        }
        self.last = Home;
        Home
    }

    /// The most recently chosen interaction.
    #[must_use]
    pub fn last_interaction(&self) -> Interaction {
        self.last
    }

    /// Executes one interaction against the application, retrying once on a
    /// write-write conflict (as the PHP application does).
    pub fn run(&mut self, app: &RubisApp, interaction: Interaction) -> Result<InteractionReport> {
        match self.execute(app, interaction) {
            Ok(commit) => Ok(InteractionReport {
                interaction,
                commit,
                retried: false,
            }),
            Err(e) if e.is_retryable() => {
                let commit = self.execute(app, interaction)?;
                Ok(InteractionReport {
                    interaction,
                    commit,
                    retried: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn execute(&mut self, app: &RubisApp, interaction: Interaction) -> Result<CommitInfo> {
        use Interaction::*;
        let staleness = self.config.staleness;
        let item_id = self
            .rng
            .random_range(1..=self.scale.total_items().max(1) as i64);
        let active_item = self
            .rng
            .random_range(1..=self.scale.active_items.max(1) as i64);
        let other_user = self.rng.random_range(1..=self.scale.users.max(1) as i64);
        let category = self
            .rng
            .random_range(1..=self.scale.categories.max(1) as i64);
        let region = self.rng.random_range(1..=self.scale.regions.max(1) as i64);
        let page = self.rng.random_range(0..3usize);
        let me = self.user_id;

        if interaction.is_read_only() {
            let mut tx = app.begin_ro(staleness)?;
            let result = (|| -> Result<()> {
                match interaction {
                    Home | Register | SellItemForm => {
                        app.page_home(&mut tx)?;
                    }
                    Browse | BrowseCategories | SellItemCategory => {
                        app.page_browse_categories(&mut tx)?;
                    }
                    BrowseRegions => {
                        app.page_browse_regions(&mut tx)?;
                    }
                    BrowseCategoriesInRegion => {
                        app.page_browse_regions(&mut tx)?;
                        app.page_browse_categories(&mut tx)?;
                    }
                    SearchItemsInCategory => {
                        app.page_search_items_in_category(&mut tx, category, page)?;
                    }
                    SearchItemsInRegion => {
                        app.page_search_items_in_region(&mut tx, region, category)?;
                    }
                    ViewItem => {
                        app.page_view_item(&mut tx, item_id)?;
                    }
                    ViewUserInfo => {
                        app.page_view_user_info(&mut tx, other_user)?;
                    }
                    ViewBidHistory => {
                        app.page_view_bid_history(&mut tx, item_id)?;
                    }
                    BuyNowAuth | PutBidAuth | PutCommentAuth | AboutMeAuth => {
                        app.auth_user(&mut tx, &format!("user{me}"))?;
                    }
                    BuyNow | PutBid => {
                        app.auth_user(&mut tx, &format!("user{me}"))?;
                        app.page_view_item(&mut tx, active_item)?;
                    }
                    PutComment => {
                        app.auth_user(&mut tx, &format!("user{me}"))?;
                        app.page_view_user_info(&mut tx, other_user)?;
                    }
                    AboutMe => {
                        app.page_about_me(&mut tx, me)?;
                    }
                    _ => {}
                }
                Ok(())
            })();
            match result {
                Ok(()) => tx.commit(),
                Err(e) => {
                    let _ = tx.abort();
                    Err(e)
                }
            }
        } else {
            let mut tx = app.begin_rw()?;
            let result = (|| -> Result<()> {
                match interaction {
                    RegisterUser => {
                        app.register_user(
                            &mut tx,
                            &format!("newuser-{}-{}", me, self.rng.random_range(0..u32::MAX)),
                            region,
                        )?;
                    }
                    StoreBuyNow => {
                        app.store_buy_now(&mut tx, me, active_item, 1)?;
                    }
                    StoreBid => {
                        let amount = self.rng.random_range(1.0..500.0);
                        app.store_bid(&mut tx, me, active_item, amount)?;
                    }
                    StoreComment => {
                        app.store_comment(&mut tx, me, other_user, item_id, 1, "nice")?;
                    }
                    RegisterItem => {
                        app.register_item(
                            &mut tx,
                            me,
                            category,
                            region,
                            "new item",
                            "freshly listed",
                            10.0,
                        )?;
                    }
                    _ => {}
                }
                Ok(())
            })();
            match result {
                Ok(()) => tx.commit(),
                Err(e) => {
                    let _ = tx.abort();
                    Err(e)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_classification() {
        assert!(Interaction::ViewItem.is_read_only());
        assert!(Interaction::SearchItemsInCategory.is_read_only());
        assert!(!Interaction::StoreBid.is_read_only());
        assert!(!Interaction::RegisterItem.is_read_only());
        assert_eq!(Interaction::ALL.len(), 26);
    }

    #[test]
    fn bidding_mix_is_roughly_85_percent_read_only() {
        let mut session = ClientSession::new(1, RubisScale::tiny(), WorkloadConfig::default());
        let total = 20_000;
        let read_only = (0..total)
            .filter(|_| session.next_interaction().is_read_only())
            .count();
        let fraction = read_only as f64 / total as f64;
        assert!(
            (0.80..=0.92).contains(&fraction),
            "read-only fraction {fraction} outside the bidding-mix range"
        );
    }

    #[test]
    fn think_times_have_roughly_the_configured_mean() {
        let mut session = ClientSession::new(2, RubisScale::tiny(), WorkloadConfig::default());
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| session.think_time_micros() as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (5_000_000.0..9_000_000.0).contains(&mean),
            "mean think time {mean} not near 7 s"
        );
    }

    #[test]
    fn sessions_are_deterministic_given_a_seed() {
        let seq = |seed| {
            let mut s = ClientSession::new(seed, RubisScale::tiny(), WorkloadConfig::default());
            (0..50).map(|_| s.next_interaction()).collect::<Vec<_>>()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
        let s = ClientSession::new(9, RubisScale::tiny(), WorkloadConfig::default());
        assert!(s.user_id() >= 1);
    }
}
