//! # cache-server — the versioned application-data cache (§4)
//!
//! This crate implements the cache half of TxCache: in-memory cache nodes
//! that store *versioned* entries. Each entry is tagged with the validity
//! interval over which its value was the current result, and still-valid
//! entries carry invalidation tags describing their database dependencies.
//!
//! Key behaviours reproduced from the paper:
//!
//! * **Versioned lookups** (§4.1): a lookup names a key plus a range of
//!   acceptable timestamps (the transaction's pin-set bounds); the node
//!   returns the most recent version whose validity interval intersects the
//!   range, along with that interval.
//! * **Invalidation streams** (§4.2): nodes process the database's ordered
//!   per-commit invalidation messages, truncating the validity of matching
//!   still-valid entries at the commit timestamp. Still-valid entries are
//!   treated as valid only up to the last processed invalidation, which
//!   closes the update/insert race; an insert that arrives after its own
//!   invalidation is truncated on arrival.
//! * **Dual-granularity tags** (§4.2): keyed tags (`table:col=value`) and
//!   wildcard tags (`table:?`) on both the dependency and the update side.
//! * **Eviction** (§4.1): LRU under a per-node byte budget, plus eager
//!   removal of entries too stale to satisfy any transaction.
//! * **Consistent hashing** (§4): keys are partitioned across nodes; every
//!   client maps keys to nodes directly.
//! * **Miss classification** (§8.3): compulsory, staleness, capacity and
//!   consistency misses, used to regenerate Figure 8.

#![forbid(unsafe_code)]

pub mod cluster;
pub mod entry;
pub mod node;
pub mod ring;
pub mod server;
pub mod stats;

pub use cluster::CacheCluster;
pub use entry::{CacheEntry, LookupOutcome, LookupRequest, MissKind};
pub use node::{CacheNode, NodeConfig};
pub use ring::ConsistentHashRing;
pub use server::{ConnectionSummary, ServerStats, TxcachedServer};
pub use stats::CacheStats;
