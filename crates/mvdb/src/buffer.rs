//! A simulated buffer manager.
//!
//! The paper evaluates two database configurations: one whose working set
//! fits in the server's buffer cache ("in-memory") and one that is
//! disk-bound. Our storage engine keeps everything in RAM, so to reproduce
//! the distinction we account for *logical page accesses*: every heap or
//! index page touched by query execution is run through an LRU buffer pool of
//! configurable size, and the resulting hit/miss counts feed the harness's
//! cost model (a miss costs a simulated disk read).

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;
use txtypes::key::stable_hash_of;

/// Identifies a logical page: a stable hash of the table (or index) name
/// plus a page number. Hashing the name keeps the per-access hot path free
/// of string allocation; a 64-bit FNV collision between two table names is
/// negligible for the simulated hit-rate accounting this feeds.
pub type PageRef = (u64, u64);

/// Outcome of a page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    /// The page was already resident in the buffer pool.
    Hit,
    /// The page had to be "read from disk".
    Miss,
}

/// Running counters of buffer activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Number of page accesses that hit the pool.
    pub hits: u64,
    /// Number of page accesses that missed (simulated disk reads).
    pub misses: u64,
}

impl BufferStats {
    /// Total page accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero if there were no accesses.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

/// An LRU pool of logical pages.
#[derive(Debug)]
pub struct BufferManager {
    capacity_pages: usize,
    /// page → LRU tick of last access.
    resident: HashMap<PageRef, u64>,
    /// LRU tick → page, for O(log n) victim selection.
    lru_order: BTreeMap<u64, PageRef>,
    tick: u64,
    stats: BufferStats,
}

impl BufferManager {
    /// Creates a pool holding at most `capacity_pages` pages. A capacity of
    /// zero disables caching entirely (every access is a miss).
    #[must_use]
    pub fn new(capacity_pages: usize) -> BufferManager {
        BufferManager {
            capacity_pages,
            resident: HashMap::new(),
            lru_order: BTreeMap::new(),
            tick: 0,
            stats: BufferStats::default(),
        }
    }

    /// Touches a page, returning whether it was a hit or a miss and updating
    /// LRU state and statistics.
    pub fn access(&mut self, table: &str, page: u64) -> PageAccess {
        self.tick += 1;
        let key: PageRef = (stable_hash_of(&table), page);
        if let Some(prev_tick) = self.resident.get(&key).copied() {
            self.lru_order.remove(&prev_tick);
            self.lru_order.insert(self.tick, key);
            self.resident.insert(key, self.tick);
            self.stats.hits += 1;
            return PageAccess::Hit;
        }
        self.stats.misses += 1;
        if self.capacity_pages == 0 {
            return PageAccess::Miss;
        }
        while self.resident.len() >= self.capacity_pages {
            if let Some((&victim_tick, _)) = self.lru_order.iter().next() {
                if let Some(victim) = self.lru_order.remove(&victim_tick) {
                    self.resident.remove(&victim);
                }
            } else {
                break;
            }
        }
        self.resident.insert(key, self.tick);
        self.lru_order.insert(self.tick, key);
        PageAccess::Miss
    }

    /// Returns the number of currently resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Returns the accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Resets the statistics counters (the resident set is kept warm).
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }
}

/// A concurrency-safe buffer pool: the page space is hash-partitioned across
/// independent [`BufferManager`] shards, each behind its own mutex, so
/// queries running under different table locks never serialize on a single
/// pool-wide lock. Eviction is per-shard LRU, which approximates global LRU
/// closely enough for the harness's hit-rate modelling.
#[derive(Debug)]
pub struct SharedBuffer {
    shards: Vec<Mutex<BufferManager>>,
}

impl SharedBuffer {
    /// Default number of shards; enough that four to sixteen reader threads
    /// rarely collide on one shard mutex.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Creates a pool of `capacity_pages` total, split evenly across
    /// `shards` partitions (at least one). A capacity of zero disables
    /// caching, exactly as in [`BufferManager`]; any non-zero capacity
    /// rounds *up* to at least one page per shard so a small pool is never
    /// silently disabled by the split.
    #[must_use]
    pub fn new(capacity_pages: usize, shards: usize) -> SharedBuffer {
        let shards = shards.max(1);
        let per_shard = capacity_pages.div_ceil(shards);
        SharedBuffer {
            shards: (0..shards)
                .map(|_| Mutex::new(BufferManager::new(per_shard)))
                .collect(),
        }
    }

    fn shard_of(&self, table: &str, page: u64) -> usize {
        (stable_hash_of(&(table, page)) as usize) % self.shards.len()
    }

    /// Touches a page on its owning shard.
    pub fn access(&self, table: &str, page: u64) -> PageAccess {
        self.shards[self.shard_of(table, page)]
            .lock()
            .access(table, page)
    }

    /// Statistics summed over all shards.
    #[must_use]
    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
        }
        total
    }

    /// Resets statistics on every shard (residency is kept warm).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().reset_stats();
        }
    }

    /// Total resident pages across all shards.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident_pages()).sum()
    }

    /// Number of shards the page space is partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut b = BufferManager::new(2);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.access("t", 1), PageAccess::Hit);
        assert_eq!(b.access("t", 2), PageAccess::Miss);
        assert_eq!(b.stats(), BufferStats { hits: 1, misses: 2 });
        assert!((b.stats().hit_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut b = BufferManager::new(2);
        b.access("t", 1);
        b.access("t", 2);
        b.access("t", 1); // 2 is now LRU
        b.access("t", 3); // evicts 2
        assert_eq!(b.access("t", 1), PageAccess::Hit);
        assert_eq!(b.access("t", 2), PageAccess::Miss);
        assert_eq!(b.resident_pages(), 2);
    }

    #[test]
    fn distinct_tables_use_distinct_pages() {
        let mut b = BufferManager::new(4);
        b.access("a", 1);
        assert_eq!(b.access("b", 1), PageAccess::Miss);
        assert_eq!(b.access("a", 1), PageAccess::Hit);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut b = BufferManager::new(0);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.resident_pages(), 0);
    }

    #[test]
    fn reset_stats_keeps_residency() {
        let mut b = BufferManager::new(2);
        b.access("t", 1);
        b.reset_stats();
        assert_eq!(b.stats().accesses(), 0);
        assert_eq!(b.access("t", 1), PageAccess::Hit);
    }

    #[test]
    fn hit_rate_of_empty_stats_is_zero() {
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn shared_buffer_routes_pages_consistently() {
        let b = SharedBuffer::new(64, 4);
        assert_eq!(b.shard_count(), 4);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.access("t", 1), PageAccess::Hit);
        assert_eq!(b.stats(), BufferStats { hits: 1, misses: 1 });
        assert_eq!(b.resident_pages(), 1);
        b.reset_stats();
        assert_eq!(b.stats().accesses(), 0);
        // Still resident after the stats reset.
        assert_eq!(b.access("t", 1), PageAccess::Hit);
    }

    #[test]
    fn shared_buffer_is_usable_from_many_threads() {
        let b = std::sync::Arc::new(SharedBuffer::new(256, 4));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let b = std::sync::Arc::clone(&b);
                scope.spawn(move || {
                    for page in 0..64u64 {
                        b.access("shared", page ^ (t * 17));
                    }
                });
            }
        });
        assert!(b.stats().accesses() >= 256);
    }

    #[test]
    fn shared_buffer_with_zero_capacity_never_caches() {
        let b = SharedBuffer::new(0, 4);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.resident_pages(), 0);
    }

    #[test]
    fn shared_buffer_smaller_than_shard_count_still_caches() {
        let b = SharedBuffer::new(10, 16);
        assert_eq!(b.access("t", 1), PageAccess::Miss);
        assert_eq!(b.access("t", 1), PageAccess::Hit);
    }
}
