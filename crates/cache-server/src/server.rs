//! `txcached`: a cache node served over the `wire` protocol.
//!
//! The paper deploys cache nodes as standalone `txcached` processes that
//! application servers reach over a memcached-like protocol extended with
//! versioned lookups and an invalidation stream (§4, §7). This module is
//! that server, hosting one [`CacheNode`] behind the [`wire`] protocol,
//! generic over the transport.
//!
//! The server is parameterized by a [`wire::Listener`]: production binds a
//! real `TcpListener` ([`TxcachedServer::bind`]), served by the
//! readiness-driven event loop in [`crate::event_loop`] — one epoll reactor
//! thread plus a small worker pool, so thousands of idle connections cost
//! no threads. The chaos tests serve the *same* request logic over an
//! in-process [`wire::SimListener`] ([`TxcachedServer::serve`]), whose
//! condvar-based pipes cannot be polled: that path keeps the
//! thread-per-connection loop, so the full request/invalidation path runs
//! under deterministic fault injection — frame drops, duplicates,
//! reorderings, resets, partitions — without sockets.
//!
//! Design points:
//!
//! * **One request dispatcher, two connection models.** Both the event loop
//!   and the per-connection threads funnel every decoded request through
//!   [`apply_request`]. The node is internally sharded
//!   ([`crate::CacheNode`]): handlers hit its key-hash shards concurrently —
//!   lookups under shared locks, inserts under one shard's exclusive lock —
//!   instead of queueing on a node-wide mutex, so a many-connection server
//!   scales with cores. This is the same contention model as the in-process
//!   [`crate::CacheCluster`].
//! * **Server-side invalidation application**: an
//!   [`wire::Request::InvalidationBatch`] applies every event in commit order
//!   under the node's invalidation sequencer and then advances the node's
//!   heartbeat timestamp, exactly like the in-process delivery path.
//! * **Sequence echoing**: every response carries the sequence number of the
//!   request it answers (protocol v2), so clients detect duplicated or
//!   reordered frames as desyncs instead of attributing a response to the
//!   wrong request.
//! * **Graceful shutdown**: [`TxcachedServer::shutdown`] stops the accept
//!   loop, shuts every open connection down, and joins all threads; dropping
//!   the server does the same, so tests cannot leak threads.
//! * **Per-connection and per-node counters**: every connection tracks its
//!   own request and byte counts (kept in a bounded log of closed
//!   connections), and the node-wide totals are visible through
//!   [`TxcachedServer::stats`] as well as remotely via
//!   [`wire::Request::Stats`].

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use wire::{
    Closer, FramedStream, GetResult, InvalidationEvent, Listener, PutEntry, Request, Response,
    Transport, WireError,
};

use crate::entry::{LookupOutcome, LookupRequest};
use crate::node::{CacheNode, NodeConfig};
use crate::telemetry::{self, ServerObs};

/// How many closed-connection summaries the server retains.
const CONNECTION_LOG_CAP: usize = 64;

/// Node-wide protocol counters (distinct from the cache's own
/// [`crate::CacheStats`], which count lookups/insertions/invalidations).
/// The per-request and per-read counters are cache-line-striped
/// [`obs::StripedCounter`]s, so concurrent connection handlers never
/// contend on one cache line just to tally bytes.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted since the server started. A plain atomic, not a
    /// striped counter: its `fetch_add` return value doubles as the new
    /// connection's id, which needs one totally ordered allocator.
    pub connections_accepted: AtomicU64,
    /// Connections that have finished.
    pub connections_closed: obs::StripedCounter,
    /// Requests served across all connections.
    pub requests: obs::StripedCounter,
    /// Bytes read from clients.
    pub bytes_in: obs::StripedCounter,
    /// Bytes written to clients.
    pub bytes_out: obs::StripedCounter,
    /// Frames that failed to decode (answered with an error frame).
    pub protocol_errors: obs::StripedCounter,
    /// Invalidation batches applied.
    pub invalidation_batches: obs::StripedCounter,
}

/// A plain snapshot of [`ServerCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted since the server started.
    pub connections_accepted: u64,
    /// Connections that have finished.
    pub connections_closed: u64,
    /// Requests served across all connections.
    pub requests: u64,
    /// Bytes read from clients.
    pub bytes_in: u64,
    /// Bytes written to clients.
    pub bytes_out: u64,
    /// Frames that failed to decode.
    pub protocol_errors: u64,
    /// Invalidation batches applied.
    pub invalidation_batches: u64,
}

impl ServerCounters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.get(),
            requests: self.requests.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            protocol_errors: self.protocol_errors.get(),
            invalidation_batches: self.invalidation_batches.get(),
        }
    }
}

/// What one finished connection did, kept in the server's bounded log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionSummary {
    /// The client's address.
    pub peer: String,
    /// Requests the connection served.
    pub requests: u64,
    /// Bytes read from the client.
    pub bytes_in: u64,
    /// Bytes written to the client.
    pub bytes_out: u64,
}

pub(crate) struct Shared {
    pub(crate) node: CacheNode,
    pub(crate) counters: ServerCounters,
    /// Per-opcode latency histograms, queue gauges, and the slow-op flight
    /// recorder (see [`crate::telemetry`]).
    pub(crate) obs: ServerObs,
    /// Highest ring-membership epoch any client has announced (protocol
    /// v5). Zero until the first announcement: epoch checks are skipped.
    pub(crate) ring_epoch: AtomicU64,
    pub(crate) shutting_down: AtomicBool,
    /// Closers for *currently open* connections, keyed by connection id, so
    /// shutdown can unblock their reads. Handlers remove their own entry on
    /// exit, so the map never outgrows the live connection count.
    pub(crate) open_conns: Mutex<HashMap<u64, Closer>>,
    pub(crate) handlers: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) closed_log: Mutex<VecDeque<ConnectionSummary>>,
}

/// Appends one finished connection to the bounded closed-connection log.
pub(crate) fn log_closed(shared: &Shared, summary: ConnectionSummary) {
    let mut log = shared.closed_log.lock();
    if log.len() == CONNECTION_LOG_CAP {
        log.pop_front();
    }
    log.push_back(summary);
}

/// A running `txcached` server behind some [`Listener`] — a TCP address in
/// production ([`TxcachedServer::bind`]), a simulated one in the chaos tests
/// ([`TxcachedServer::serve`]).
pub struct TxcachedServer<L: Listener = TcpListener> {
    /// The bound TCP address, when the listener is a real socket.
    local_addr: Option<SocketAddr>,
    label: String,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    listener_closer: Closer,
    event_loop: Option<crate::event_loop::EventLoopHandle>,
    _listener: std::marker::PhantomData<fn() -> L>,
}

impl TxcachedServer<TcpListener> {
    /// Binds a TCP listener (use port 0 for an ephemeral port) and starts
    /// the readiness-driven event loop ([`crate::event_loop`]): one epoll
    /// reactor thread multiplexing every connection, plus a small worker
    /// pool executing requests against the sharded node. The hosted node
    /// is named `name` and configured by `config`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        name: impl Into<String>,
        config: NodeConfig,
    ) -> std::io::Result<TxcachedServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let label = Listener::local_label(&listener);
        let listener_closer = Listener::closer(&listener)?;
        let shared = Arc::new(Shared {
            obs: ServerObs::new(&config),
            node: CacheNode::new(name, config),
            counters: ServerCounters::default(),
            ring_epoch: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            open_conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            closed_log: Mutex::new(VecDeque::new()),
        });
        let event_loop = crate::event_loop::spawn(listener, Arc::clone(&shared))?;
        Ok(TxcachedServer {
            local_addr: Some(local_addr),
            label,
            shared,
            accept: None,
            listener_closer,
            event_loop: Some(event_loop),
            _listener: std::marker::PhantomData,
        })
    }

    /// The TCP address the server is listening on.
    ///
    /// # Panics
    /// Never for servers built with [`TxcachedServer::bind`].
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr.expect("bind() always records the address")
    }
}

impl<L: Listener> TxcachedServer<L> {
    /// Starts the accept loop on an already-bound listener of any
    /// transport. This is the generic constructor the chaos tests use with
    /// a [`wire::SimListener`]; [`TxcachedServer::bind`] wraps it for TCP.
    pub fn serve(
        listener: L,
        name: impl Into<String>,
        config: NodeConfig,
    ) -> std::io::Result<TxcachedServer<L>> {
        let label = listener.local_label();
        let listener_closer = listener.closer()?;
        let shared = Arc::new(Shared {
            obs: ServerObs::new(&config),
            node: CacheNode::new(name, config),
            counters: ServerCounters::default(),
            ring_epoch: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            open_conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            closed_log: Mutex::new(VecDeque::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name(format!("txcached-accept-{label}"))
            .spawn(move || accept_loop(&listener, &accept_shared))?;
        Ok(TxcachedServer {
            local_addr: None,
            label,
            shared,
            accept: Some(accept),
            listener_closer,
            event_loop: None,
            _listener: std::marker::PhantomData,
        })
    }

    /// A human-readable label of the listening address (works for every
    /// transport; see [`TxcachedServer::local_addr`] for the TCP address).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Node-wide protocol counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.counters.snapshot()
    }

    /// The cache's own counters (hits, misses, invalidations, …).
    #[must_use]
    pub fn cache_stats(&self) -> crate::CacheStats {
        self.shared.node.stats()
    }

    /// Per-shard lock-contention and eviction counters of the hosted node.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<crate::CacheShardStats> {
        self.shared.node.shard_stats()
    }

    /// Highest ring-membership epoch any client has announced (zero before
    /// the first [`wire::Request::RingEpoch`]).
    #[must_use]
    pub fn ring_epoch(&self) -> u64 {
        self.shared.ring_epoch.load(Ordering::SeqCst)
    }

    /// The full metrics snapshot: obs registry (per-opcode latency
    /// histograms, queue gauges, slow-op counters) merged with the
    /// node-wide protocol counters — the same data a
    /// [`wire::Request::Metrics`] returns over the wire.
    #[must_use]
    pub fn metrics(&self) -> obs::MetricsSnapshot {
        telemetry::metrics_snapshot(&self.shared)
    }

    /// The slow-op flight recorder's current contents, oldest first.
    #[must_use]
    pub fn slow_ops(&self) -> Vec<obs::SlowOp> {
        self.shared.obs.slow_ops.dump()
    }

    /// Adjusts the slow-op capture threshold at runtime (microseconds).
    pub fn set_slow_op_threshold_us(&self, us: u64) {
        self.shared.obs.slow_ops.set_threshold_us(us);
    }

    /// Summaries of recently closed connections (most recent last, bounded).
    #[must_use]
    pub fn connection_log(&self) -> Vec<ConnectionSummary> {
        self.shared.closed_log.lock().iter().cloned().collect()
    }

    /// Number of currently open connections.
    #[must_use]
    pub fn open_connection_count(&self) -> usize {
        self.shared.open_conns.lock().len()
    }

    /// Stops accepting, closes every open connection, and joins all threads.
    /// Idempotent; also invoked on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(mut event_loop) = self.event_loop.take() {
            // The event-driven path: the wake pipe unblocks the reactor,
            // which tears every connection down itself before exiting.
            event_loop.shutdown();
        } else {
            self.listener_closer.close();
            if let Some(handle) = self.accept.take() {
                let _ = handle.join();
            }
        }
        for (_, closer) in self.shared.open_conns.lock().drain() {
            closer.close();
        }
        let handlers: Vec<JoinHandle<()>> = self.shared.handlers.lock().drain(..).collect();
        for handle in handlers {
            let _ = handle.join();
        }
    }
}

impl<L: Listener> Drop for TxcachedServer<L> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<L: Listener> std::fmt::Debug for TxcachedServer<L> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxcachedServer")
            .field("addr", &self.label)
            .field("stats", &self.stats())
            .finish()
    }
}

fn accept_loop<L: Listener>(listener: &L, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok(stream) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failures (e.g. EMFILE under fd pressure)
                // must not busy-spin the accept thread.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let conn_id = shared
            .counters
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        if let Ok(closer) = stream.closer() {
            shared.open_conns.lock().insert(conn_id, closer);
        }
        // Reap finished handler threads so the handle list tracks live
        // connections instead of growing for the server's lifetime.
        shared.handlers.lock().retain(|h| !h.is_finished());
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("txcached-conn".to_string())
            .spawn(move || handle_connection(conn_id, stream, &conn_shared));
        if let Ok(handle) = handle {
            shared.handlers.lock().push(handle);
        }
    }
}

/// A transport adapter that counts bytes into the per-connection tallies and
/// the node-wide counters.
struct CountingStream<'a, T> {
    inner: T,
    counters: &'a ServerCounters,
    bytes_in: u64,
    bytes_out: u64,
}

impl<T: Read> Read for CountingStream<'_, T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in += n as u64;
        self.counters.bytes_in.add(n as u64);
        Ok(n)
    }
}

impl<T: Write> Write for CountingStream<'_, T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out += n as u64;
        self.counters.bytes_out.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

fn handle_connection<T: Transport>(conn_id: u64, stream: T, shared: &Arc<Shared>) {
    let peer = stream.peer_label();
    let counting = CountingStream {
        inner: stream,
        counters: &shared.counters,
        bytes_in: 0,
        bytes_out: 0,
    };
    let mut framed = FramedStream::new(counting);
    let mut requests = 0u64;

    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        // Frame-level errors desynchronize the stream: close. Body-level
        // decode errors leave the stream at a frame boundary: answer with an
        // error frame (echoing the request's sequence number) and keep
        // serving.
        let (seq, decoded) = match framed.recv_request() {
            Ok(Some(x)) => x,
            Ok(None) | Err(_) => break,
        };
        let response = match decoded {
            Ok(request) => {
                requests += 1;
                shared.counters.requests.bump();
                telemetry::apply_timed(shared, request, shared.obs.trace(seq))
            }
            Err(e) => {
                shared.counters.protocol_errors.bump();
                error_frame(&e)
            }
        };
        if framed.send_response(seq, &response).is_err() {
            break;
        }
    }

    let counting = framed.into_inner();
    // Release the registered closer now: leaving it in the registry would
    // keep the connection's resources alive and leak one entry per
    // connection.
    if let Some(closer) = shared.open_conns.lock().remove(&conn_id) {
        closer.close();
    }
    shared.counters.connections_closed.bump();
    log_closed(
        shared,
        ConnectionSummary {
            peer,
            requests,
            bytes_in: counting.bytes_in,
            bytes_out: counting.bytes_out,
        },
    );
}

pub(crate) fn error_frame(e: &WireError) -> Response {
    let code = match e {
        WireError::Version { .. } => wire::ErrorCode::Version,
        _ => wire::ErrorCode::Malformed,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

pub(crate) fn apply_request(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ping { nonce } => Response::Pong { nonce },
        Request::VersionedGet {
            key,
            pinset_lo,
            pinset_hi,
            freshness_lo,
        } => {
            let lookup = LookupRequest {
                pinset_lo,
                pinset_hi,
                freshness_lo,
            };
            match shared.node.lookup(&key, &lookup) {
                LookupOutcome::Hit {
                    value,
                    validity,
                    stored_validity,
                    tags,
                } => Response::Hit {
                    value,
                    validity,
                    stored_validity,
                    tags,
                },
                LookupOutcome::Miss(kind) => Response::Miss { kind: kind.into() },
            }
        }
        Request::Put {
            key,
            value,
            validity,
            tags,
            now,
        } => {
            shared.node.insert(key, value, validity, tags, now);
            Response::PutAck
        }
        Request::MultiGet {
            epoch,
            keys,
            pinset_lo,
            pinset_hi,
            freshness_lo,
        } => {
            if let Some(expected) = stale_epoch(shared, epoch) {
                return Response::WrongEpoch { expected };
            }
            let lookup = LookupRequest {
                pinset_lo,
                pinset_hi,
                freshness_lo,
            };
            // One result per key, in request order — the client zips them
            // back onto its read set positionally.
            let results = keys
                .iter()
                .map(|key| match shared.node.lookup(key, &lookup) {
                    LookupOutcome::Hit {
                        value,
                        validity,
                        stored_validity,
                        tags,
                    } => GetResult::Hit {
                        value,
                        validity,
                        stored_validity,
                        tags,
                    },
                    LookupOutcome::Miss(kind) => GetResult::Miss { kind: kind.into() },
                })
                .collect();
            Response::MultiGetResult { results }
        }
        Request::MultiPut { epoch, entries } => {
            if let Some(expected) = stale_epoch(shared, epoch) {
                return Response::WrongEpoch { expected };
            }
            let applied = entries.len() as u64;
            for PutEntry {
                key,
                value,
                validity,
                tags,
                now,
            } in entries
            {
                shared.node.insert(key, value, validity, tags, now);
            }
            Response::MultiPutAck { applied }
        }
        Request::InvalidationBatch { events, heartbeat } => {
            shared.counters.invalidation_batches.bump();
            // The whole batch applies under one acquisition of the node's
            // invalidation sequencer, so concurrent batches cannot
            // interleave their commit-ordered events.
            let applied = shared.node.apply_invalidation_batch(
                events
                    .into_iter()
                    .map(|InvalidationEvent { timestamp, tags }| (timestamp, tags)),
                heartbeat,
            );
            Response::InvalidationAck { applied }
        }
        Request::EvictStale { min_useful_ts } => {
            shared.node.evict_stale(min_useful_ts);
            Response::Ok
        }
        Request::Stats => Response::StatsSnapshot(shared.node.stats().into()),
        Request::ShardStats => Response::ShardStatsSnapshot(
            shared
                .node
                .shard_stats()
                .into_iter()
                .map(Into::into)
                .collect(),
        ),
        Request::ResetStats => {
            shared.node.reset_stats();
            Response::Ok
        }
        Request::SealStillValid => Response::Sealed {
            sealed: shared.node.seal_still_valid(),
        },
        Request::RingEpoch { epoch } => {
            // Remember the highest epoch ever announced; a racing older
            // announcement can never roll the fence back.
            let prev = shared.ring_epoch.fetch_max(epoch, Ordering::SeqCst);
            Response::EpochAck {
                epoch: prev.max(epoch),
            }
        }
        Request::Metrics => {
            Response::MetricsSnapshot(telemetry::to_wire(telemetry::metrics_snapshot(shared)))
        }
    }
}

/// Returns the node's expected epoch when an epoch-stamped batch must be
/// refused: both sides are versioned (non-zero) and they disagree.
fn stale_epoch(shared: &Shared, request_epoch: u64) -> Option<u64> {
    if request_epoch == 0 {
        return None;
    }
    let known = shared.ring_epoch.load(Ordering::SeqCst);
    (known != 0 && known != request_epoch).then_some(known)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use std::net::TcpStream;
    use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};
    use wire::MissCode;

    fn client(server: &TxcachedServer) -> FramedStream<TcpStream> {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        FramedStream::new(stream)
    }

    fn server() -> TxcachedServer {
        TxcachedServer::bind(
            "127.0.0.1:0",
            "test-node",
            NodeConfig {
                capacity_bytes: 1 << 20,
                ..NodeConfig::default()
            },
        )
        .unwrap()
    }

    fn tags(id: u64) -> TagSet {
        [InvalidationTag::keyed("items", format!("id={id}"))]
            .into_iter()
            .collect()
    }

    #[test]
    fn ping_put_get_roundtrip_over_tcp() {
        let mut srv = server();
        let mut conn = client(&srv);

        let pong = conn.call(&Request::Ping { nonce: 7 }).unwrap();
        assert_eq!(pong, Response::Pong { nonce: 7 });

        let key = CacheKey::new("f", "[1]");
        let put = conn
            .call(&Request::Put {
                key: key.clone(),
                value: Bytes::from_static(b"payload"),
                validity: ValidityInterval::unbounded(Timestamp(3)),
                tags: tags(1),
                now: WallClock::ZERO,
            })
            .unwrap();
        assert_eq!(put, Response::PutAck);

        let got = conn
            .call(&Request::VersionedGet {
                key,
                pinset_lo: Timestamp(3),
                pinset_hi: Timestamp(3),
                freshness_lo: Timestamp(3),
            })
            .unwrap();
        match got {
            Response::Hit { value, .. } => assert_eq!(&value[..], b"payload"),
            other => panic!("expected hit, got {other:?}"),
        }

        let miss = conn
            .call(&Request::VersionedGet {
                key: CacheKey::new("f", "[2]"),
                pinset_lo: Timestamp(3),
                pinset_hi: Timestamp(3),
                freshness_lo: Timestamp(3),
            })
            .unwrap();
        assert_eq!(
            miss,
            Response::Miss {
                kind: MissCode::Compulsory
            }
        );

        srv.shutdown();
        let stats = srv.stats();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.requests, 4);
        assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
        let log = srv.connection_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].requests, 4);
    }

    #[test]
    fn the_same_server_runs_over_a_sim_transport() {
        let net = wire::SimNet::new(11);
        let listener = net.bind("node-0");
        let srv: TxcachedServer<wire::SimListener> = TxcachedServer::serve(
            listener,
            "sim-node",
            NodeConfig {
                capacity_bytes: 1 << 20,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        let conn =
            wire::Connector::connect(&net, "node-0", std::time::Duration::from_secs(1)).unwrap();
        let mut framed = FramedStream::new(conn);
        let pong = framed.call(&Request::Ping { nonce: 42 }).unwrap();
        assert_eq!(pong, Response::Pong { nonce: 42 });
        assert_eq!(srv.label(), "sim://node-0");
        assert_eq!(srv.stats().requests, 1);
    }

    #[test]
    fn invalidation_batch_truncates_entries_and_advances_heartbeat() {
        let srv = server();
        let mut conn = client(&srv);
        let key = CacheKey::new("f", "[1]");
        conn.call(&Request::Put {
            key: key.clone(),
            value: Bytes::from_static(b"v"),
            validity: ValidityInterval::unbounded(Timestamp(3)),
            tags: tags(1),
            now: WallClock::ZERO,
        })
        .unwrap();

        let ack = conn
            .call(&Request::InvalidationBatch {
                events: vec![
                    InvalidationEvent {
                        timestamp: Timestamp(10),
                        tags: tags(1),
                    },
                    InvalidationEvent {
                        timestamp: Timestamp(11),
                        tags: tags(99),
                    },
                ],
                heartbeat: Timestamp(11),
            })
            .unwrap();
        assert_eq!(ack, Response::InvalidationAck { applied: 2 });

        // Truncated at 10: a lookup at 10 misses, a lookup at 9 hits.
        let miss = conn
            .call(&Request::VersionedGet {
                key: key.clone(),
                pinset_lo: Timestamp(10),
                pinset_hi: Timestamp(10),
                freshness_lo: Timestamp(10),
            })
            .unwrap();
        assert!(matches!(miss, Response::Miss { .. }));
        let hit = conn
            .call(&Request::VersionedGet {
                key,
                pinset_lo: Timestamp(9),
                pinset_hi: Timestamp(9),
                freshness_lo: Timestamp(9),
            })
            .unwrap();
        assert!(matches!(hit, Response::Hit { .. }));

        match conn.call(&Request::Stats).unwrap() {
            Response::StatsSnapshot(stats) => {
                assert_eq!(stats.invalidated_entries, 1);
                assert_eq!(stats.invalidation_messages, 2);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        assert_eq!(srv.stats().invalidation_batches, 1);
    }

    #[test]
    fn malformed_bodies_get_error_frames_but_keep_the_connection() {
        let srv = server();
        let mut conn = client(&srv);
        // A body with a sequence number and a bogus version byte.
        let mut body = 77u64.to_le_bytes().to_vec();
        body.extend_from_slice(&[99u8, 0x01]);
        wire::write_frame(conn.transport_mut(), &body).unwrap();
        // Read the raw error frame back: it echoes sequence 77.
        let reply = wire::read_frame(conn.transport_mut()).unwrap().unwrap();
        assert_eq!(&reply[..8], &77u64.to_le_bytes());
        match Response::decode(&reply[8..]).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, wire::ErrorCode::Version),
            other => panic!("expected error frame, got {other:?}"),
        }
        // The connection still works.
        let pong = conn.call(&Request::Ping { nonce: 1 }).unwrap();
        assert_eq!(pong, Response::Pong { nonce: 1 });
        assert_eq!(srv.stats().protocol_errors, 1);
    }

    #[test]
    fn closed_connections_release_their_registry_entries() {
        let srv = server();
        for _ in 0..5 {
            let mut conn = client(&srv);
            conn.call(&Request::Ping { nonce: 1 }).unwrap();
            drop(conn);
        }
        // Handlers notice the disconnect and remove their registry entries;
        // poll briefly since teardown is asynchronous.
        for _ in 0..100 {
            if srv.open_connection_count() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(
            srv.open_connection_count(),
            0,
            "registry must not leak closed connections"
        );
        assert_eq!(srv.stats().connections_closed, 5);
    }

    #[test]
    fn seal_still_valid_over_tcp() {
        let srv = server();
        let mut conn = client(&srv);
        conn.call(&Request::Put {
            key: CacheKey::new("f", "[1]"),
            value: Bytes::from_static(b"v"),
            validity: ValidityInterval::unbounded(Timestamp(3)),
            tags: tags(1),
            now: WallClock::ZERO,
        })
        .unwrap();
        let sealed = conn.call(&Request::SealStillValid).unwrap();
        assert_eq!(sealed, Response::Sealed { sealed: 1 });
        assert_eq!(srv.cache_stats().sealed_entries, 1);
    }

    #[test]
    fn shard_stats_surface_over_tcp() {
        let srv = server();
        let mut conn = client(&srv);
        for i in 0..16 {
            conn.call(&Request::Put {
                key: CacheKey::new("f", format!("[{i}]")),
                value: Bytes::from_static(b"v"),
                validity: ValidityInterval::unbounded(Timestamp(3)),
                tags: tags(i),
                now: WallClock::ZERO,
            })
            .unwrap();
        }
        conn.call(&Request::VersionedGet {
            key: CacheKey::new("f", "[0]"),
            pinset_lo: Timestamp(3),
            pinset_hi: Timestamp(3),
            freshness_lo: Timestamp(3),
        })
        .unwrap();
        match conn.call(&Request::ShardStats).unwrap() {
            Response::ShardStatsSnapshot(shards) => {
                assert_eq!(shards.len(), srv.shard_stats().len());
                let writes: u64 = shards.iter().map(|s| s.write_locks).sum();
                assert_eq!(writes, 16, "one exclusive acquisition per put");
                let reads: u64 = shards.iter().map(|s| s.read_locks).sum();
                assert_eq!(reads, 1, "one shared acquisition per get");
                let entries: u64 = shards.iter().map(|s| s.entries).sum();
                assert_eq!(entries, 16);
            }
            other => panic!("expected shard stats, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_disconnects_clients_and_is_idempotent() {
        let mut srv = server();
        let mut conn = client(&srv);
        conn.call(&Request::Ping { nonce: 1 }).unwrap();
        srv.shutdown();
        srv.shutdown();
        // The server side is gone: the next call fails or yields EOF.
        let result = conn.call(&Request::Ping { nonce: 2 });
        assert!(result.is_err());
    }

    #[test]
    fn multiget_and_multiput_roundtrip_over_tcp() {
        let srv = server();
        let mut conn = client(&srv);
        let entries: Vec<wire::PutEntry> = (0..3)
            .map(|i| wire::PutEntry {
                key: CacheKey::new("f", format!("[{i}]")),
                value: Bytes::from(format!("v{i}").into_bytes()),
                validity: ValidityInterval::unbounded(Timestamp(3)),
                tags: tags(i),
                now: WallClock::ZERO,
            })
            .collect();
        let ack = conn.call(&Request::MultiPut { epoch: 0, entries }).unwrap();
        assert_eq!(ack, Response::MultiPutAck { applied: 3 });

        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::new("f", format!("[{i}]")))
            .collect();
        match conn
            .call(&Request::MultiGet {
                epoch: 0,
                keys,
                pinset_lo: Timestamp(3),
                pinset_hi: Timestamp(3),
                freshness_lo: Timestamp(3),
            })
            .unwrap()
        {
            Response::MultiGetResult { results } => {
                assert_eq!(results.len(), 4, "one result per key, in order");
                for (i, result) in results.iter().take(3).enumerate() {
                    match result {
                        wire::GetResult::Hit { value, .. } => {
                            assert_eq!(value.as_slice(), format!("v{i}").as_bytes());
                        }
                        other => panic!("expected hit for key {i}, got {other:?}"),
                    }
                }
                assert_eq!(
                    results[3],
                    wire::GetResult::Miss {
                        kind: MissCode::Compulsory
                    }
                );
            }
            other => panic!("expected multiget result, got {other:?}"),
        }
        assert_eq!(srv.cache_stats().insertions, 3);
    }

    #[test]
    fn ring_epoch_announcements_fence_stale_batches() {
        let srv = server();
        let mut conn = client(&srv);
        assert_eq!(srv.ring_epoch(), 0);

        // Unversioned batches are always served.
        let ok = conn
            .call(&Request::MultiGet {
                epoch: 0,
                keys: vec![CacheKey::new("f", "[0]")],
                pinset_lo: Timestamp(1),
                pinset_hi: Timestamp(1),
                freshness_lo: Timestamp(1),
            })
            .unwrap();
        assert!(matches!(ok, Response::MultiGetResult { .. }));

        // Announce epoch 4; a lower re-announcement cannot roll it back.
        let ack = conn.call(&Request::RingEpoch { epoch: 4 }).unwrap();
        assert_eq!(ack, Response::EpochAck { epoch: 4 });
        let ack = conn.call(&Request::RingEpoch { epoch: 2 }).unwrap();
        assert_eq!(ack, Response::EpochAck { epoch: 4 });
        assert_eq!(srv.ring_epoch(), 4);

        // A batch stamped with a different epoch gets the typed redirect.
        let redirected = conn
            .call(&Request::MultiGet {
                epoch: 3,
                keys: vec![CacheKey::new("f", "[0]")],
                pinset_lo: Timestamp(1),
                pinset_hi: Timestamp(1),
                freshness_lo: Timestamp(1),
            })
            .unwrap();
        assert_eq!(redirected, Response::WrongEpoch { expected: 4 });
        let redirected = conn
            .call(&Request::MultiPut {
                epoch: 9,
                entries: Vec::new(),
            })
            .unwrap();
        assert_eq!(redirected, Response::WrongEpoch { expected: 4 });

        // The matching epoch is served.
        let served = conn
            .call(&Request::MultiGet {
                epoch: 4,
                keys: vec![CacheKey::new("f", "[0]")],
                pinset_lo: Timestamp(1),
                pinset_hi: Timestamp(1),
                freshness_lo: Timestamp(1),
            })
            .unwrap();
        assert!(matches!(served, Response::MultiGetResult { .. }));
    }

    #[test]
    fn metrics_request_returns_per_opcode_latency_histograms() {
        let srv = server();
        let mut conn = client(&srv);
        for i in 0..8 {
            conn.call(&Request::Put {
                key: CacheKey::new("f", format!("[{i}]")),
                value: Bytes::from_static(b"v"),
                validity: ValidityInterval::unbounded(Timestamp(3)),
                tags: tags(i),
                now: WallClock::ZERO,
            })
            .unwrap();
        }
        conn.call(&Request::VersionedGet {
            key: CacheKey::new("f", "[0]"),
            pinset_lo: Timestamp(3),
            pinset_hi: Timestamp(3),
            freshness_lo: Timestamp(3),
        })
        .unwrap();

        let snap = match conn.call(&Request::Metrics).unwrap() {
            Response::MetricsSnapshot(report) => crate::telemetry::snapshot_from_wire(&report),
            other => panic!("expected metrics snapshot, got {other:?}"),
        };
        let puts = snap.histogram("server.req.put.us").unwrap();
        assert_eq!(puts.count, 8);
        assert!(puts.percentile(0.99) >= puts.percentile(0.50));
        let gets = snap.histogram("server.req.get.us").unwrap();
        assert_eq!(gets.count, 1);
        // The merged protocol counters ride along, and the local accessor
        // sees the same series.
        assert_eq!(snap.counter("server.conns.accepted"), Some(1));
        assert!(snap.counter("server.req.total").unwrap() >= 9);
        assert!(snap.gauge("server.queue.depth").is_some());
        let local = srv.metrics();
        assert_eq!(
            local.histogram("server.req.put.us").unwrap().count,
            puts.count
        );
    }

    #[test]
    fn metrics_disabled_mode_serves_requests_without_recording() {
        let srv = TxcachedServer::bind(
            "127.0.0.1:0",
            "test-node",
            NodeConfig {
                capacity_bytes: 1 << 20,
                metrics: false,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        let mut conn = client(&srv);
        conn.call(&Request::Ping { nonce: 1 }).unwrap();
        let snap = match conn.call(&Request::Metrics).unwrap() {
            Response::MetricsSnapshot(report) => crate::telemetry::snapshot_from_wire(&report),
            other => panic!("expected metrics snapshot, got {other:?}"),
        };
        // No clock readings: the histograms exist but stay empty. The plain
        // protocol counters keep running.
        assert_eq!(snap.histogram("server.req.ping.us").unwrap().count, 0);
        assert!(snap.counter("server.req.total").unwrap() >= 1);
        assert_eq!(snap.gauge("server.queue.depth"), Some(0));
    }

    #[test]
    fn slow_op_ring_captures_an_artificially_delayed_request() {
        let srv = TxcachedServer::bind(
            "127.0.0.1:0",
            "test-node",
            NodeConfig {
                capacity_bytes: 1 << 20,
                // Every request is held for 2 ms, and anything over 1 ms is
                // captured: the ring must see the delayed op with its trail.
                inject_delay_us: 2_000,
                slow_op_threshold_us: 1_000,
                ..NodeConfig::default()
            },
        )
        .unwrap();
        let mut conn = client(&srv);
        conn.call(&Request::Ping { nonce: 9 }).unwrap();
        let ops = srv.slow_ops();
        assert_eq!(ops.len(), 1);
        let op = &ops[0];
        assert_eq!(op.op, "ping");
        assert!(op.total_us >= 2_000, "total {}us", op.total_us);
        let labels: Vec<&str> = op.spans.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, ["queued", "injected_delay", "applied", "done"]);
        assert_eq!(
            srv.metrics().counter("server.slow_ops.captured"),
            Some(1),
            "capture count surfaces in the registry"
        );

        // Raising the threshold at runtime stops further captures.
        srv.set_slow_op_threshold_us(u64::MAX);
        conn.call(&Request::Ping { nonce: 10 }).unwrap();
        assert_eq!(srv.slow_ops().len(), 1);
    }

    #[test]
    fn many_in_flight_requests_multiplex_on_one_connection() {
        let srv = server();
        let mut conn = client(&srv);
        // Fire a burst of requests without reading, then collect the
        // responses newest-first: the pending table (not arrival order)
        // pairs each response to its request.
        let seqs: Vec<u64> = (0..32)
            .map(|i| conn.send_request(&Request::Ping { nonce: i }).unwrap())
            .collect();
        for (i, seq) in seqs.iter().enumerate().rev() {
            let response = conn.recv_for(*seq).unwrap();
            assert_eq!(response, Response::Pong { nonce: i as u64 });
        }
        assert_eq!(srv.stats().requests, 32);
    }

    #[test]
    fn concurrent_clients_share_one_node() {
        let srv = server();
        let addr = srv.local_addr();
        std::thread::scope(|scope| {
            for t in 0..4 {
                scope.spawn(move || {
                    let mut conn = FramedStream::new(TcpStream::connect(addr).unwrap());
                    for i in 0..25 {
                        let key = CacheKey::new("f", format!("[{t}:{i}]"));
                        conn.call(&Request::Put {
                            key: key.clone(),
                            value: Bytes::from(vec![t as u8; 16]),
                            validity: ValidityInterval::unbounded(Timestamp(1)),
                            tags: TagSet::new(),
                            now: WallClock::ZERO,
                        })
                        .unwrap();
                        let got = conn
                            .call(&Request::VersionedGet {
                                key,
                                pinset_lo: Timestamp(1),
                                pinset_hi: Timestamp(1),
                                freshness_lo: Timestamp(1),
                            })
                            .unwrap();
                        assert!(matches!(got, Response::Hit { .. }));
                    }
                });
            }
        });
        assert_eq!(srv.cache_stats().insertions, 100);
        assert_eq!(srv.cache_stats().hits, 100);
        assert_eq!(srv.stats().connections_accepted, 4);
    }
}
