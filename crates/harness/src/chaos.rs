//! The randomized chaos scenario runner.
//!
//! Drives a RUBiS-shaped read-mostly workload (N client sessions over a
//! shared accounts table: read-only balance lookups through cacheable
//! calls, interleaved with read/write transfers) against a [`TxCache`]
//! whose cache tier is either the in-process cluster or a set of real
//! `TxcachedServer`s reached over a [`wire::SimNet`] — the deterministic
//! in-process transport that injects frame drops, duplicates, reorderings,
//! connection resets, and scripted asymmetric partitions.
//!
//! Every transaction's observations are recorded into a
//! [`History`](crate::history::History) and verified by the
//! transactional-consistency checker: one consistent snapshot per
//! transaction (no frankenreads), no future reads, and no time-travel past
//! the staleness bound — the §2/§4.2 contract, checked under faults rather
//! than assumed.
//!
//! ## Reproducibility
//!
//! A scenario is fully determined by its [`ChaosScenarioConfig`]: the
//! workload choices come from a seeded splitmix64, the clock is simulated,
//! and every transport fault is decided by per-pipe seeded generators at
//! write time. [`ChaosOutcome`] carries digests of both the fault schedule
//! and the observed history so tests can assert bit-for-bit
//! reproducibility. On a failure, print [`ChaosOutcome::repro`] — setting
//! `CHAOS_SEED` replays the exact run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cache_server::{CacheCluster, CacheStats, NodeConfig, TxcachedServer};
use mvdb::{
    ColumnType, Database, DbConfig, FsyncPolicy, Predicate, RecoverOptions, SelectQuery,
    TableSchema, Value,
};
use pincushion::Pincushion;
use txcache::backend::{CacheBackend, RemoteCluster, RemoteOptions};
use txcache::{ClientStats, Transaction, TxCache, TxCacheConfig};
use txtypes::{Result, SimClock, Staleness};
use wire::{ChaosConfig, FaultCounts, SimListener, SimNet, SplitMix64};

use crate::history::{CheckSummary, CommitRecord, History, ReadRecord, Violation};

/// Every account starts with this balance; the workload only transfers, so
/// the per-key ground truth (and the global sum) stays checkable.
const INITIAL_BALANCE: i64 = 1_000;

/// Which cache tier the scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosBackend {
    /// The in-process [`CacheCluster`] — no transport, no faults; this
    /// validates the checker itself and the backend-independence of the
    /// invariants.
    InProcess {
        /// Number of cache nodes.
        nodes: usize,
    },
    /// Real [`TxcachedServer`]s served over a [`SimNet`] with the
    /// configured chaos; the full wire path under fault injection.
    SimRemote {
        /// Number of `txcached` servers.
        nodes: usize,
    },
}

/// A scripted database crash-and-restart, applied at one round boundary.
///
/// Just before the crash, `silent_transfers` read/write transactions commit
/// *directly* on the database — bypassing the TxCache invalidation pump —
/// so the cache tier never hears their invalidations, exactly like a crash
/// that takes the invalidation multicast down with it. The database then
/// suffers a simulated power loss (the WAL keeps only its fsynced prefix),
/// is recovered from disk into a fresh instance, and a new `TxCache` is
/// attached to the *same, still-warm* cache nodes. On reconnect the
/// recovered invalidation log and horizon are delivered to the cache tier,
/// which invalidates the silently-updated entries and seals everything else
/// at the recovered horizon — the §4.2 rule, surviving a restart.
#[derive(Debug, Clone, Copy)]
pub struct CrashRestartScript {
    /// Round boundary at which the crash fires.
    pub crash_round: usize,
    /// Transfers committed durably but invisibly to the caches just before
    /// the power loss.
    pub silent_transfers: usize,
    /// **Mutation hook**: skip rebuilding the invalidation horizon during
    /// recovery, so the reconnect heartbeat revalidates the stale entries
    /// and the checker can be shown to catch the resurrection.
    pub skip_horizon_recovery: bool,
}

/// A scripted partition window, applied at round boundaries: the node is
/// severed (live connections reset) and blackholed from `from_round` until
/// `until_round`, when it heals.
#[derive(Debug, Clone, Copy)]
pub struct PartitionWindow {
    /// Index of the node to partition.
    pub node: usize,
    /// Round at which the partition starts.
    pub from_round: usize,
    /// Round at which the partition heals.
    pub until_round: usize,
}

/// Full description of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ChaosScenarioConfig {
    /// Master seed: workload choices and (for [`ChaosBackend::SimRemote`])
    /// every transport fault derive from it.
    pub seed: u64,
    /// Which cache tier to drive.
    pub backend: ChaosBackend,
    /// Per-frame fault probabilities (ignored for the in-process backend).
    pub chaos: ChaosConfig,
    /// Scripted partition windows (ignored for the in-process backend).
    pub partitions: Vec<PartitionWindow>,
    /// Number of accounts in the table.
    pub accounts: u64,
    /// Number of client sessions.
    pub sessions: usize,
    /// Rounds to run; every round executes one operation per session.
    pub rounds: usize,
    /// Staleness limit for the read-only transactions.
    pub staleness: Staleness,
    /// Microseconds of simulated time between operations.
    pub op_gap_micros: u64,
    /// Per-operation transport timeout (how long a lost frame stalls a
    /// client before it degrades). Real time, so keep it small in tests.
    pub op_timeout: std::time::Duration,
    /// Replica-set size R for the cache tier: every key lives on its ring
    /// primary plus R−1 successors, writes fan out, reads fall back.
    pub replication: usize,
    /// Consecutive failed exchanges before the remote backend demotes a
    /// node and its successors take over reads.
    pub failover_threshold: u32,
    /// **Mutation hook**: disable the §4.2 seal-on-heal recovery rule, so
    /// the checker can be shown to catch the resulting stale resurrection.
    pub disable_seal_on_heal: bool,
    /// Scripted database crash-and-restart (None for the purely
    /// transport-fault scenarios). When set, the database runs durably (WAL
    /// plus snapshots) in a scratch directory for the length of the run.
    pub crash: Option<CrashRestartScript>,
}

impl ChaosScenarioConfig {
    /// A bounded randomized-fault scenario on the simulated wire tier.
    #[must_use]
    pub fn stormy(seed: u64) -> ChaosScenarioConfig {
        ChaosScenarioConfig {
            seed,
            backend: ChaosBackend::SimRemote { nodes: 2 },
            chaos: ChaosConfig::stormy(),
            partitions: vec![PartitionWindow {
                node: 0,
                from_round: 30,
                until_round: 45,
            }],
            accounts: 12,
            sessions: 6,
            rounds: 80,
            // Short enough that pinned snapshots age out over the run, so
            // reads keep re-pinning fresh snapshots and the cache keeps
            // absorbing new still-valid entries — the state the seal and
            // invalidation machinery actually protect.
            staleness: Staleness::seconds(5),
            op_gap_micros: 50_000,
            // Generous relative to an in-process round trip (µs): a lost
            // frame is the only thing that should ever burn this, so a
            // scheduler hiccup on a loaded CI host cannot masquerade as a
            // fault and perturb the run's reproducibility.
            op_timeout: std::time::Duration::from_millis(100),
            replication: 1,
            failover_threshold: 3,
            disable_seal_on_heal: false,
            crash: None,
        }
    }

    /// A fault-free scenario on the in-process backend (checker sanity).
    #[must_use]
    pub fn in_process(seed: u64) -> ChaosScenarioConfig {
        ChaosScenarioConfig {
            seed,
            backend: ChaosBackend::InProcess { nodes: 2 },
            chaos: ChaosConfig::healthy(),
            partitions: Vec::new(),
            accounts: 12,
            sessions: 6,
            rounds: 80,
            staleness: Staleness::seconds(30),
            op_gap_micros: 50_000,
            op_timeout: std::time::Duration::from_millis(40),
            replication: 1,
            failover_threshold: 3,
            disable_seal_on_heal: false,
            crash: None,
        }
    }

    /// A deterministic partition-and-heal scenario with *no* random frame
    /// faults: the cache warms, one node is partitioned while transfers
    /// commit (their invalidations are lost), then the node heals. With
    /// seal-on-heal active the run is consistent; with the mutation hook it
    /// serves resurrected stale values the checker must catch.
    #[must_use]
    pub fn partition_heal(seed: u64) -> ChaosScenarioConfig {
        ChaosScenarioConfig {
            seed,
            backend: ChaosBackend::SimRemote { nodes: 2 },
            chaos: ChaosConfig::healthy(),
            partitions: vec![PartitionWindow {
                node: 0,
                from_round: 20,
                until_round: 36,
            }],
            accounts: 8,
            sessions: 4,
            rounds: 60,
            // Staleness barely above one operation gap: every read runs at
            // an essentially fresh snapshot, so invalidated entries are
            // promptly recomputed and re-inserted still-valid. That keeps
            // unbounded entries present on the node when the partition
            // hits (the state the seal must bound on heal) and makes
            // post-heal reads run at snapshots newer than the lost
            // invalidations (the state a resurrected entry would poison).
            staleness: Staleness::millis(80),
            op_gap_micros: 50_000,
            op_timeout: std::time::Duration::from_millis(100),
            replication: 1,
            failover_threshold: 3,
            disable_seal_on_heal: false,
            crash: None,
        }
    }

    /// The replicated-failover scenario: three `txcached` nodes with R=2
    /// replication, no random frame faults, and one node killed (severed
    /// and blackholed) for a third of the run, then healed. The surviving
    /// replica of every key keeps serving reads through the kill window
    /// (counted as replica fallbacks once the dead node is demoted), the
    /// history stays consistent, and the healed node is re-filled by
    /// fan-out writes and serves traffic again without any client or peer
    /// restarting.
    #[must_use]
    pub fn replicated_failover(seed: u64) -> ChaosScenarioConfig {
        ChaosScenarioConfig {
            seed,
            backend: ChaosBackend::SimRemote { nodes: 3 },
            chaos: ChaosConfig::healthy(),
            partitions: vec![PartitionWindow {
                node: 0,
                from_round: 30,
                until_round: 60,
            }],
            accounts: 12,
            sessions: 6,
            rounds: 90,
            staleness: Staleness::seconds(5),
            op_gap_micros: 50_000,
            op_timeout: std::time::Duration::from_millis(100),
            replication: 2,
            failover_threshold: 3,
            disable_seal_on_heal: false,
            crash: None,
        }
    }

    /// The crash-restart scenario: a durable database (WAL plus snapshots,
    /// group commit with no dally so every commit is fsynced before it
    /// acks) behind two `txcached` nodes with *no* transport faults. Halfway
    /// through, a burst of transfers commits without the caches hearing
    /// their invalidations, the database crashes and recovers from disk,
    /// and a fresh `TxCache` reconnects the still-warm cache tier to the
    /// recovered instance. The recovered invalidation horizon must bound
    /// every pre-crash cache entry, or the silent transfers resurrect as
    /// stale reads.
    #[must_use]
    pub fn crash_restart(seed: u64) -> ChaosScenarioConfig {
        ChaosScenarioConfig {
            seed,
            backend: ChaosBackend::SimRemote { nodes: 2 },
            chaos: ChaosConfig::healthy(),
            partitions: Vec::new(),
            accounts: 8,
            sessions: 4,
            rounds: 60,
            // Same rationale as `partition_heal`: near-fresh snapshots keep
            // the cache full of still-valid unbounded entries at crash time
            // (the state the recovered horizon must bound) and make
            // post-restart reads run past the silent commits (the state a
            // resurrected entry would poison).
            staleness: Staleness::millis(80),
            op_gap_micros: 50_000,
            op_timeout: std::time::Duration::from_millis(100),
            replication: 1,
            failover_threshold: 3,
            disable_seal_on_heal: false,
            crash: Some(CrashRestartScript {
                crash_round: 30,
                silent_transfers: 4,
                skip_horizon_recovery: false,
            }),
        }
    }
}

/// The measured outcome of one scenario run.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// Checker verdict: a summary, or every violation found.
    pub verdict: std::result::Result<CheckSummary, Vec<Violation>>,
    /// Digest of the observed transaction history.
    pub history_digest: u64,
    /// Digest of the transport fault schedule (0 for in-process runs).
    pub fault_digest: u64,
    /// Injected-fault counts (empty for in-process runs).
    pub fault_counts: FaultCounts,
    /// Cache statistics at the end of the run.
    pub cache_stats: CacheStats,
    /// TxCache client cache hits (the run must actually exercise the
    /// cache for the checker to mean anything).
    pub cache_hits: u64,
    /// Remote-backend degradations (0 for in-process runs).
    pub degraded_ops: u64,
    /// Remote-backend heals (0 for in-process runs).
    pub reconnects: u64,
    /// Reads served by (or retried on) a further replica after the
    /// preferred one failed (0 without replication).
    pub replica_fallbacks: u64,
    /// Nodes demoted after consecutive failed exchanges (0 without
    /// replication or failures).
    pub failovers: u64,
    /// Batches refused by a node for carrying a stale ring epoch.
    pub wrong_epoch_redirects: u64,
    /// Client hit rate before the first partition window opened (over the
    /// whole run when there is no partition).
    pub steady_hit_rate: f64,
    /// Client hit rate *inside* the first partition window (0 when there is
    /// no partition).
    pub disrupted_hit_rate: f64,
    /// The first partitioned node's server-side hit count at the moment it
    /// healed.
    pub healed_node_hits_at_heal: u64,
    /// The same node's hit count at the end of the run; growth past
    /// `healed_node_hits_at_heal` proves the healed node served traffic
    /// again without any client or peer restarting.
    pub healed_node_hits_final: u64,
    /// WAL commits replayed by the scripted crash-restart's recovery (0
    /// when the scenario has no crash script).
    pub recovered_commits: u64,
}

impl ChaosOutcome {
    /// A one-line reproduction command for this run.
    #[must_use]
    pub fn repro(&self, test_name: &str) -> String {
        repro_command(self.seed, test_name)
    }

    /// Panics with seed and repro command if the checker found violations;
    /// returns the summary otherwise.
    pub fn expect_consistent(&self, test_name: &str) -> CheckSummary {
        match &self.verdict {
            Ok(summary) => *summary,
            Err(violations) => {
                let mut msg = format!(
                    "chaos checker found {} violation(s) under CHAOS_SEED={}\n  \
                     repro: {}\n",
                    violations.len(),
                    self.seed,
                    self.repro(test_name)
                );
                for v in violations.iter().take(8) {
                    msg.push_str(&format!("  {v}\n"));
                }
                panic!("{msg}");
            }
        }
    }
}

/// The chaos seed for this process: `CHAOS_SEED` if set, else `default`.
#[must_use]
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_SEED must be a u64, got {s:?}")),
        Err(_) => default,
    }
}

/// The one-line command that replays a failing chaos run.
#[must_use]
pub fn repro_command(seed: u64, test_name: &str) -> String {
    format!("CHAOS_SEED={seed} cargo test --release --test chaos {test_name} -- --nocapture")
}

/// Everything a running scenario holds alive.
struct ScenarioStack {
    clock: SimClock,
    /// Replaced wholesale by the scripted crash-restart; everything else in
    /// the stack survives the database's death.
    txcache: Arc<TxCache>,
    /// The cache tier, kept separately so a crash-restart can attach a new
    /// `TxCache` to the same still-warm nodes.
    cache: Arc<dyn CacheBackend>,
    /// Kept for fault control and teardown.
    net: Option<SimNet>,
    remote: Option<Arc<RemoteCluster<SimNet>>>,
    servers: Vec<TxcachedServer<SimListener>>,
    addrs: Vec<String>,
    /// Scratch directory holding the WAL and snapshots of a durable run;
    /// wiped on teardown.
    durable_dir: Option<PathBuf>,
}

/// Distinguishes concurrently-running durable scenarios within one process.
static DURABLE_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The database configuration for durable (crash-scripted) scenarios: group
/// commit with a zero dally, so every commit is fsynced before it acks —
/// committed history is never lost to the scripted power cut, keeping the
/// checker's ground truth and the recovered state in agreement.
fn durable_db_config() -> DbConfig {
    DbConfig {
        fsync: FsyncPolicy::GroupCommit { max_wait_us: 0 },
        ..DbConfig::default()
    }
}

fn build_stack(config: &ChaosScenarioConfig) -> Result<ScenarioStack> {
    let clock = SimClock::new();
    let mut durable_dir = None;
    let db = if config.crash.is_some() {
        let dir = std::env::temp_dir().join(format!(
            "txcache-chaos-{}-{}-{:016x}",
            std::process::id(),
            DURABLE_DIR_COUNTER.fetch_add(1, Ordering::Relaxed),
            config.seed
        ));
        // A leftover directory from a killed run would replay foreign
        // history into this one; start from empty.
        let _ = std::fs::remove_dir_all(&dir);
        let db = Arc::new(Database::open_durable(
            &dir,
            durable_db_config(),
            clock.clone(),
        )?);
        durable_dir = Some(dir);
        db
    } else {
        Arc::new(Database::new(DbConfig::default(), clock.clone()))
    };
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )?;
    db.bulk_load(
        "accounts",
        (0..config.accounts)
            .map(|id| vec![Value::Int(id as i64), Value::Int(INITIAL_BALANCE)])
            .collect(),
    )?;

    let mut net: Option<SimNet> = None;
    let mut remote: Option<Arc<RemoteCluster<SimNet>>> = None;
    let mut servers: Vec<TxcachedServer<SimListener>> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    let cache: Arc<dyn CacheBackend> = match config.backend {
        ChaosBackend::InProcess { nodes } => Arc::new(CacheCluster::with_replication(
            nodes.max(1),
            config.replication.max(1),
            NodeConfig {
                capacity_bytes: 4 << 20,
                ..NodeConfig::default()
            },
        )),
        ChaosBackend::SimRemote { nodes } => {
            let sim = SimNet::with_chaos(config.seed, config.chaos);
            for i in 0..nodes.max(1) {
                let addr = format!("node-{i}");
                let listener = sim.bind(&addr);
                servers.push(
                    TxcachedServer::serve(
                        listener,
                        format!("chaos-{i}"),
                        NodeConfig {
                            capacity_bytes: 4 << 20,
                            ..NodeConfig::default()
                        },
                    )
                    .map_err(|e| txtypes::Error::Network(format!("sim serve {addr}: {e}")))?,
                );
                addrs.push(addr);
            }
            let options = RemoteOptions {
                op_timeout: config.op_timeout,
                connect_timeout: config.op_timeout,
                // Zero cooldown keeps reconnect behaviour deterministic
                // (every operation retries; refusals are instant in the
                // sim) and lets scripted heals take effect immediately.
                retry_cooldown: std::time::Duration::ZERO,
                replication: config.replication.max(1),
                failover_threshold: config.failover_threshold.max(1),
            };
            let cluster = Arc::new(RemoteCluster::connect_via(sim.clone(), &addrs, options)?);
            if config.disable_seal_on_heal {
                cluster.disable_seal_on_heal_for_fault_injection();
            }
            net = Some(sim);
            remote = Some(Arc::clone(&cluster));
            cluster
        }
    };

    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::with_backend(
        db,
        Arc::clone(&cache),
        pincushion,
        clock.clone(),
        TxCacheConfig::default(),
    ));
    Ok(ScenarioStack {
        clock,
        txcache,
        cache,
        net,
        remote,
        servers,
        addrs,
        durable_dir,
    })
}

/// Reads one account's balance through the cacheable-call path.
fn cached_balance(tx: &mut Transaction<'_>, account: u64) -> Result<i64> {
    tx.cached("balance", &account, |tx| {
        let q = SelectQuery::table("accounts").filter(Predicate::eq("id", account as i64));
        let r = tx.query(&q)?;
        Ok(r.get(0, "balance")?.as_int().unwrap_or(0))
    })
}

/// Runs one scenario to completion and checks the recorded history.
///
/// # Panics
/// Panics (with the seed and a repro command) if the *database side* of the
/// run fails — the chaos layer must only ever degrade the cache, never the
/// application path.
#[must_use]
pub fn run_chaos_scenario(config: &ChaosScenarioConfig) -> ChaosOutcome {
    let mut stack = build_stack(config).unwrap_or_else(|e| {
        panic!(
            "chaos stack failed to build under CHAOS_SEED={}: {e}\n  repro: {}",
            config.seed,
            repro_command(config.seed, "")
        )
    });
    let mut history = History::new((0..config.accounts).map(|id| (id, INITIAL_BALANCE)));
    let mut rng = SplitMix64::new(config.seed ^ 0x5EED_F00D);

    // The first partition window splits the run into phases for the
    // hit-rate comparison: steady state before it opens, disrupted inside
    // it. Snapshots are taken at the boundaries, before the fault fires.
    let phase_window = config.partitions.first().copied();
    let mut stats_at_open: Option<ClientStats> = None;
    let mut stats_at_heal: Option<ClientStats> = None;
    let mut healed_node_hits_at_heal = 0u64;

    for round in 0..config.rounds {
        if let Some(w) = phase_window {
            if round == w.from_round {
                stats_at_open = Some(stack.txcache.stats());
            }
            if round == w.until_round {
                stats_at_heal = Some(stack.txcache.stats());
                healed_node_hits_at_heal = stack
                    .servers
                    .get(w.node)
                    .map_or(0, |s| s.cache_stats().hits);
            }
        }
        // The scripted crash fires at a round boundary, while no request is
        // in flight: the silent transfers, the power loss, the recovery and
        // the reconnect all happen here, then the workload resumes against
        // the recovered database through the same warm cache tier.
        if let Some(script) = config.crash.filter(|s| s.crash_round == round) {
            if let Err(e) =
                perform_crash_restart(&mut stack, config, script, &mut rng, &mut history)
            {
                panic!(
                    "chaos crash-restart at round {round} failed under \
                     CHAOS_SEED={}: {e}\n  repro: {}",
                    config.seed,
                    repro_command(config.seed, "")
                );
            }
        }
        // Scripted partitions fire at round boundaries, while no request is
        // in flight — deterministic fault timing.
        if let Some(net) = &stack.net {
            for window in &config.partitions {
                let Some(addr) = stack.addrs.get(window.node) else {
                    continue;
                };
                if window.from_round == round {
                    net.sever(addr);
                    net.partition(addr);
                }
                if window.until_round == round {
                    net.heal(addr);
                }
            }
        }

        for session in 0..config.sessions {
            stack.clock.advance_micros(config.op_gap_micros.max(1));
            let op = rng.below(4);
            let outcome = if op == 0 {
                run_transfer(&stack, config, &mut rng, &mut history)
            } else {
                run_read(&stack, config, &mut rng, &mut history, session)
            };
            if let Err(e) = outcome {
                panic!(
                    "chaos round {round} session {session} failed on the \
                     database path under CHAOS_SEED={}: {e}\n  repro: {}",
                    config.seed,
                    repro_command(config.seed, "")
                );
            }
        }
    }

    let verdict = history.check();
    if verdict.is_err() {
        // A failing run is about to panic in `expect_consistent`; dump each
        // server's slow-op flight recorder first so the anomalous requests'
        // span trails survive into the test log alongside the repro seed.
        for server in &stack.servers {
            for op in server.slow_ops() {
                eprintln!("[chaos] {} slow op: {}", server.label(), op.render());
            }
        }
    }
    // Collect stats that travel over the (still-running) cache tier first,
    // then quiesce every server thread, and only then read the fault
    // schedule — lingering handler writes to abandoned connections finish
    // during shutdown, so the digest sees the complete, settled schedule.
    let cache_stats = stack.txcache.cache().stats();
    let client = stack.txcache.stats();
    let degraded_ops = stack.remote.as_ref().map_or(0, |r| r.degraded_ops());
    let reconnects = stack.remote.as_ref().map_or(0, |r| r.reconnects());
    let replica_fallbacks = stack.remote.as_ref().map_or(0, |r| r.replica_fallbacks());
    let failovers = stack.remote.as_ref().map_or(0, |r| r.failovers());
    let wrong_epoch_redirects = stack
        .remote
        .as_ref()
        .map_or(0, |r| r.wrong_epoch_redirects());
    let rate = |hits: u64, calls: u64| {
        if calls == 0 {
            0.0
        } else {
            hits as f64 / calls as f64
        }
    };
    let steady_hit_rate = match &stats_at_open {
        Some(s) => rate(s.cache_hits, s.cacheable_calls),
        None => rate(client.cache_hits, client.cacheable_calls),
    };
    let disrupted_hit_rate = match (&stats_at_open, &stats_at_heal) {
        (Some(open), Some(heal)) => rate(
            heal.cache_hits - open.cache_hits,
            heal.cacheable_calls - open.cacheable_calls,
        ),
        _ => 0.0,
    };
    let healed_node_hits_final = phase_window
        .and_then(|w| stack.servers.get(w.node))
        .map_or(0, |s| s.cache_stats().hits);
    let recovered_commits = stack
        .txcache
        .database()
        .recovery_report()
        .map_or(0, |r| r.replayed_commits as u64);
    for server in &mut stack.servers {
        server.shutdown();
    }
    if let Some(dir) = &stack.durable_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    ChaosOutcome {
        seed: config.seed,
        verdict,
        history_digest: history.digest(),
        fault_digest: stack.net.as_ref().map_or(0, SimNet::fault_digest),
        fault_counts: stack
            .net
            .as_ref()
            .map_or_else(FaultCounts::default, SimNet::fault_counts),
        cache_stats,
        cache_hits: client.cache_hits,
        degraded_ops,
        reconnects,
        replica_fallbacks,
        failovers,
        wrong_epoch_redirects,
        steady_hit_rate,
        disrupted_hit_rate,
        healed_node_hits_at_heal,
        healed_node_hits_final,
        recovered_commits,
    }
}

/// The scripted crash: silent transfers, power loss, recovery from disk,
/// and reconnecting the warm cache tier to the recovered database.
fn perform_crash_restart(
    stack: &mut ScenarioStack,
    config: &ChaosScenarioConfig,
    script: CrashRestartScript,
    rng: &mut SplitMix64,
    history: &mut History,
) -> Result<()> {
    let db = Arc::clone(stack.txcache.database());

    // Transfers committed directly on the database, bypassing the TxCache
    // invalidation pump: durable (the commit fsyncs before acking), part of
    // the checker's ground truth, but invisible to the cache tier — the
    // invalidation multicast dies with the crash.
    for _ in 0..script.silent_transfers {
        stack.clock.advance_micros(config.op_gap_micros.max(1));
        let from = rng.below(config.accounts);
        let to = (from + 1 + rng.below(config.accounts - 1)) % config.accounts;
        let amount = 1 + rng.below(5) as i64;
        let token = db.begin_rw()?;
        let read = |id: u64| -> Result<i64> {
            let q = SelectQuery::table("accounts").filter(Predicate::eq("id", id as i64));
            Ok(db
                .query(token, &q)?
                .get(0, "balance")?
                .as_int()
                .unwrap_or(0))
        };
        let a = read(from)?;
        db.update(
            token,
            "accounts",
            &Predicate::eq("id", from as i64),
            &[("balance".to_string(), Value::Int(a - amount))],
        )?;
        let b = read(to)?;
        db.update(
            token,
            "accounts",
            &Predicate::eq("id", to as i64),
            &[("balance".to_string(), Value::Int(b + amount))],
        )?;
        let timestamp = db.commit(token)?;
        history.record_commit(CommitRecord {
            timestamp,
            wall: stack.clock.now(),
            writes: vec![(from, a - amount), (to, b + amount)],
        });
    }

    // Power loss: the WAL keeps only its fsynced prefix; every in-memory
    // structure — tables, pins, the invalidation bus — is gone.
    db.simulate_crash();

    let dir = stack
        .durable_dir
        .clone()
        .expect("a crash script requires a durable stack");
    let recovered = Arc::new(Database::recover_with(
        &dir,
        durable_db_config(),
        stack.clock.clone(),
        RecoverOptions {
            skip_horizon_rebuild_for_fault_injection: script.skip_horizon_recovery,
        },
    )?);

    // Reconnect: a fresh TxCache (and pincushion — every pre-crash pin
    // refers to snapshots the dead instance forgot) over the SAME warm
    // cache nodes, then one delivery of the recovered invalidation log with
    // the recovered horizon as heartbeat. This is what invalidates the
    // silently-updated entries and bounds everything else at the horizon;
    // with the mutation hook the log is empty and the heartbeat instead
    // revalidates the stale entries.
    let pincushion = Arc::new(Pincushion::new(Default::default(), stack.clock.clone()));
    let txcache = Arc::new(TxCache::with_backend(
        Arc::clone(&recovered),
        Arc::clone(&stack.cache),
        pincushion,
        stack.clock.clone(),
        TxCacheConfig::default(),
    ));
    stack
        .cache
        .apply_invalidations(&recovered.invalidation_log(), recovered.latest_timestamp());
    stack.txcache = txcache;
    Ok(())
}

/// One read/write transfer between two distinct accounts; records the
/// resulting ground truth.
fn run_transfer(
    stack: &ScenarioStack,
    config: &ChaosScenarioConfig,
    rng: &mut SplitMix64,
    history: &mut History,
) -> Result<()> {
    let from = rng.below(config.accounts);
    let to = (from + 1 + rng.below(config.accounts - 1)) % config.accounts;
    let amount = 1 + rng.below(5) as i64;

    let mut tx = stack.txcache.begin_rw()?;
    let read = |tx: &mut Transaction<'_>, id: u64| -> Result<i64> {
        let q = SelectQuery::table("accounts").filter(Predicate::eq("id", id as i64));
        Ok(tx.query(&q)?.get(0, "balance")?.as_int().unwrap_or(0))
    };
    let a = read(&mut tx, from)?;
    tx.update(
        "accounts",
        &Predicate::eq("id", from as i64),
        &[("balance".to_string(), Value::Int(a - amount))],
    )?;
    let b = read(&mut tx, to)?;
    tx.update(
        "accounts",
        &Predicate::eq("id", to as i64),
        &[("balance".to_string(), Value::Int(b + amount))],
    )?;
    let info = tx.commit()?;
    history.record_commit(CommitRecord {
        timestamp: info.timestamp,
        wall: stack.clock.now(),
        writes: vec![(from, a - amount), (to, b + amount)],
    });
    Ok(())
}

/// One read-only transaction over a few accounts; records what it saw.
fn run_read(
    stack: &ScenarioStack,
    config: &ChaosScenarioConfig,
    rng: &mut SplitMix64,
    history: &mut History,
    session: usize,
) -> Result<()> {
    let begin_latest = stack.txcache.database().latest_timestamp();
    let begin_wall = stack.clock.now();
    let count = 2 + rng.below(2) as usize;
    let first = rng.below(config.accounts);

    let mut tx = stack.txcache.begin_ro(config.staleness)?;
    let mut reads = Vec::with_capacity(count);
    for i in 0..count {
        let key = (first + i as u64) % config.accounts;
        let value = cached_balance(&mut tx, key)?;
        reads.push((key, value));
    }
    let info = tx.commit()?;
    history.record_read_txn(ReadRecord {
        session,
        begin_latest,
        begin_wall,
        staleness_micros: config.staleness.as_micros(),
        snapshot: info.timestamp,
        reads,
    });
    Ok(())
}
