//! Figure 6: cache hit rate as a function of cache size, for the in-memory
//! and disk-bound configurations (30 s staleness limit).

use bench::{format_size, BenchArgs};
use harness::{hit_rate_table, run_experiment, DbKind, ExperimentConfig};

fn main() {
    let args = BenchArgs::parse();

    for (title, db_kind, sizes_full_scale) in [
        (
            "Figure 6(a): hit rate, in-memory database",
            DbKind::InMemory,
            [64usize, 256, 512, 768, 1024]
                .iter()
                .map(|mb| mb << 20)
                .collect::<Vec<_>>(),
        ),
        (
            "Figure 6(b): hit rate, disk-bound database",
            DbKind::DiskBound,
            [1usize, 2, 3, 5, 7, 9].iter().map(|gb| gb << 30).collect(),
        ),
    ] {
        let base = args.config(db_kind);
        let points: Vec<_> = sizes_full_scale
            .iter()
            .map(|&bytes| {
                let config = ExperimentConfig {
                    cache_bytes_full_scale: bytes,
                    ..base
                };
                let result = run_experiment(&config).expect("experiment failed");
                (format_size(bytes), result)
            })
            .collect();
        println!("{}", hit_rate_table(title, &points));
    }
}
