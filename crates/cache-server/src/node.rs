//! A single versioned cache node (§4).
//!
//! The node stores multiple versions per key, each tagged with its validity
//! interval; versions of one key have disjoint intervals because only one
//! value is current at any timestamp. Lookups specify a range of acceptable
//! timestamps and receive the most recent matching version. Still-valid
//! entries carry invalidation tags; when the node processes the invalidation
//! stream it truncates the validity of every affected entry at the update
//! transaction's commit timestamp. Eviction combines LRU with eager removal
//! of entries too stale to satisfy any transaction.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use txtypes::{CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::entry::{CacheEntry, LookupOutcome, LookupRequest, MissKind};
use crate::stats::CacheStats;

/// Internal identifier of a stored entry.
type EntryId = u64;

/// Configuration of a cache node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Memory budget for cached data, in bytes.
    pub capacity_bytes: usize,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            capacity_bytes: 64 << 20,
        }
    }
}

/// One cache server process.
#[derive(Debug)]
pub struct CacheNode {
    name: String,
    config: NodeConfig,
    entries: HashMap<EntryId, CacheEntry>,
    by_key: HashMap<CacheKey, Vec<EntryId>>,
    /// Still-valid entries indexed by each of their dependency tags.
    tag_index: HashMap<InvalidationTag, HashSet<EntryId>>,
    /// Still-valid entries indexed by dependency table (for wildcard
    /// invalidations).
    table_index: HashMap<String, HashSet<EntryId>>,
    /// LRU order: tick of last access → entry.
    lru: BTreeMap<u64, EntryId>,
    /// entry → its current LRU tick (to remove stale LRU positions).
    lru_pos: HashMap<EntryId, u64>,
    tick: u64,
    next_id: EntryId,
    used_bytes: usize,
    /// Timestamp of the most recent invalidation message processed.
    last_invalidation: Timestamp,
    /// History of processed invalidations, used to close the insert/invalidate
    /// race for entries inserted with an unbounded interval (§4.2).
    invalidation_history: Vec<(Timestamp, TagSet)>,
    /// Keys that have ever been inserted, for compulsory-miss classification.
    known_keys: HashSet<CacheKey>,
    stats: CacheStats,
}

impl CacheNode {
    /// Creates an empty node.
    #[must_use]
    pub fn new(name: impl Into<String>, config: NodeConfig) -> CacheNode {
        CacheNode {
            name: name.into(),
            config,
            entries: HashMap::new(),
            by_key: HashMap::new(),
            tag_index: HashMap::new(),
            table_index: HashMap::new(),
            lru: BTreeMap::new(),
            lru_pos: HashMap::new(),
            tick: 0,
            next_id: 1,
            used_bytes: 0,
            last_invalidation: Timestamp::ZERO,
            invalidation_history: Vec::new(),
            known_keys: HashSet::new(),
            stats: CacheStats::default(),
        }
    }

    /// The node's name (used by the consistent-hash ring and diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes of cached data currently stored.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of entries currently stored.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The node's statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.used_bytes = self.used_bytes as u64;
        s
    }

    /// Resets the hit/miss counters (contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The timestamp of the last invalidation message processed.
    #[must_use]
    pub fn last_invalidation(&self) -> Timestamp {
        self.last_invalidation
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Looks up `key` for a transaction whose acceptable timestamps are
    /// described by `request`. Returns the most recent matching version, or a
    /// classified miss.
    pub fn lookup(&mut self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        self.tick += 1;
        let Some(ids) = self.by_key.get(key) else {
            let kind = if self.known_keys.contains(key) {
                MissKind::Capacity
            } else {
                MissKind::Compulsory
            };
            self.stats.record_miss(kind);
            return LookupOutcome::Miss(kind);
        };

        // Find the matching version with the largest lower bound (most
        // recent), treating still-valid entries as bounded by the last
        // processed invalidation.
        let mut best: Option<(EntryId, ValidityInterval)> = None;
        let mut fresh_enough_exists = false;
        let mut any_version = false;
        for id in ids {
            let Some(entry) = self.entries.get(id) else {
                continue;
            };
            any_version = true;
            let effective_upper = entry.validity.effective_upper(self.last_invalidation);
            let effective = ValidityInterval {
                lower: entry.validity.lower,
                upper: Some(effective_upper),
            };
            // Fresh enough to satisfy the staleness limit alone?
            if effective.intersects_range(request.freshness_lo, Timestamp::MAX) {
                fresh_enough_exists = true;
            }
            if effective.intersects_range(request.pinset_lo, request.pinset_hi) {
                match &best {
                    Some((_, b)) if b.lower >= effective.lower => {}
                    _ => best = Some((*id, effective)),
                }
            }
        }

        if let Some((id, effective)) = best {
            let tick = self.tick;
            if let Some(prev) = self.lru_pos.insert(id, tick) {
                self.lru.remove(&prev);
            }
            self.lru.insert(tick, id);
            self.stats.hits += 1;
            let entry = &self.entries[&id];
            return LookupOutcome::Hit {
                value: entry.value.clone(),
                validity: effective,
                stored_validity: entry.validity,
                tags: entry.tags.clone(),
            };
        }

        let kind = if !any_version {
            if self.known_keys.contains(key) {
                MissKind::Capacity
            } else {
                MissKind::Compulsory
            }
        } else if fresh_enough_exists {
            MissKind::Consistency
        } else {
            MissKind::Staleness
        };
        self.stats.record_miss(kind);
        LookupOutcome::Miss(kind)
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts a value computed by the TxCache library.
    ///
    /// If the entry is still valid (unbounded interval) the node first checks
    /// the invalidations it has already processed: any matching invalidation
    /// newer than the entry's lower bound truncates it immediately, closing
    /// the race between an update committing and the freshly-computed (but
    /// already stale) value arriving at the cache.
    pub fn insert(
        &mut self,
        key: CacheKey,
        value: Bytes,
        mut validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        self.known_keys.insert(key.clone());

        // Close the insert/invalidate race for still-valid entries.
        if validity.is_unbounded() {
            let mut earliest_hit: Option<Timestamp> = None;
            for (ts, inv_tags) in &self.invalidation_history {
                if *ts > validity.lower && tags.intersects(inv_tags) {
                    earliest_hit = Some(match earliest_hit {
                        Some(cur) => cur.min(*ts),
                        None => *ts,
                    });
                }
            }
            if let Some(ts) = earliest_hit {
                match validity.truncate_at(ts) {
                    Some(truncated) => {
                        validity = truncated;
                        self.stats.late_insert_truncations += 1;
                    }
                    None => return, // the value was never current as far as the cache can tell
                }
            }
        }

        // Skip the insert if an existing version already covers the interval.
        if let Some(ids) = self.by_key.get(&key) {
            for id in ids {
                if let Some(existing) = self.entries.get(id) {
                    let covers = existing.validity.lower <= validity.lower
                        && match (existing.validity.upper, validity.upper) {
                            (None, _) => true,
                            (Some(a), Some(b)) => a >= b,
                            (Some(_), None) => false,
                        };
                    if covers {
                        self.stats.duplicate_insertions += 1;
                        return;
                    }
                }
            }
        }

        let entry = CacheEntry {
            key: key.clone(),
            value,
            validity,
            tags,
            inserted_at: now,
        };
        let size = entry.size_bytes();
        let id = self.next_id;
        self.next_id += 1;
        self.tick += 1;

        if validity.is_unbounded() {
            for tag in entry.tags.iter() {
                self.tag_index.entry(tag.clone()).or_default().insert(id);
                self.table_index
                    .entry(tag.table.clone())
                    .or_default()
                    .insert(id);
            }
        }
        self.by_key.entry(key).or_default().push(id);
        self.lru.insert(self.tick, id);
        self.lru_pos.insert(id, self.tick);
        self.entries.insert(id, entry);
        self.used_bytes += size;
        self.stats.insertions += 1;

        self.enforce_capacity();
    }

    /// Evicts least-recently-used entries until the node fits its budget.
    fn enforce_capacity(&mut self) {
        while self.used_bytes > self.config.capacity_bytes {
            let Some((&tick, &id)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&tick);
            self.remove_entry(id);
            self.stats.lru_evictions += 1;
        }
    }

    /// Removes an entry from every index. The LRU map entry is removed lazily
    /// by callers that iterate it; `lru_pos` is authoritative.
    fn remove_entry(&mut self, id: EntryId) {
        let Some(entry) = self.entries.remove(&id) else {
            return;
        };
        self.used_bytes = self.used_bytes.saturating_sub(entry.size_bytes());
        if let Some(pos) = self.lru_pos.remove(&id) {
            self.lru.remove(&pos);
        }
        if let Some(ids) = self.by_key.get_mut(&entry.key) {
            ids.retain(|e| *e != id);
            if ids.is_empty() {
                self.by_key.remove(&entry.key);
            }
        }
        for tag in entry.tags.iter() {
            if let Some(set) = self.tag_index.get_mut(tag) {
                set.remove(&id);
                if set.is_empty() {
                    self.tag_index.remove(tag);
                }
            }
            if let Some(set) = self.table_index.get_mut(&tag.table) {
                set.remove(&id);
                if set.is_empty() {
                    self.table_index.remove(&tag.table);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invalidation
    // ------------------------------------------------------------------

    /// Processes one invalidation-stream message: truncates the validity of
    /// every still-valid entry whose dependency tags match, and advances the
    /// node's notion of "now" in timestamp space.
    pub fn apply_invalidation(&mut self, timestamp: Timestamp, tags: &TagSet) {
        let mut affected: HashSet<EntryId> = HashSet::new();
        for tag in tags.iter() {
            if tag.is_wildcard() {
                if let Some(ids) = self.table_index.get(&tag.table) {
                    affected.extend(ids.iter().copied());
                }
            } else {
                if let Some(ids) = self.tag_index.get(tag) {
                    affected.extend(ids.iter().copied());
                }
                // Entries that depend on the whole table (wildcard dependency)
                // are affected by any keyed update on that table.
                if let Some(ids) = self.tag_index.get(&InvalidationTag::wildcard(&tag.table)) {
                    affected.extend(ids.iter().copied());
                }
            }
        }

        for id in affected {
            let Some(entry) = self.entries.get_mut(&id) else {
                continue;
            };
            if !entry.validity.is_unbounded() {
                continue;
            }
            match entry.validity.truncate_at(timestamp) {
                Some(truncated) => {
                    entry.validity = truncated;
                    self.stats.invalidated_entries += 1;
                    // No longer still-valid: drop it from the tag indexes.
                    let tags: Vec<InvalidationTag> = entry.tags.iter().cloned().collect();
                    for tag in tags {
                        if let Some(set) = self.tag_index.get_mut(&tag) {
                            set.remove(&id);
                        }
                        if let Some(set) = self.table_index.get_mut(&tag.table) {
                            set.remove(&id);
                        }
                    }
                }
                None => {
                    // The entry was never valid before this invalidation —
                    // discard it outright.
                    self.remove_entry(id);
                    self.stats.invalidated_entries += 1;
                }
            }
        }

        self.last_invalidation = self.last_invalidation.max(timestamp);
        self.invalidation_history.push((timestamp, tags.clone()));
        self.stats.invalidation_messages += 1;
    }

    /// Informs the node that every invalidation up to `ts` has been
    /// delivered (a heartbeat). Still-valid entries may then be served for
    /// lookups up to `ts` even when no recent commit touched their tags.
    /// The caller must have already delivered every invalidation message with
    /// a timestamp at or below `ts`.
    pub fn note_timestamp(&mut self, ts: Timestamp) {
        self.last_invalidation = self.last_invalidation.max(ts);
    }

    /// Bounds every still-valid entry at the conservative upper bound
    /// lookups already apply (the §4.2 rule: valid only through the last
    /// processed invalidation).
    ///
    /// A client calls this — via the wire protocol's `SealStillValid` —
    /// after healing a broken connection: invalidation-stream messages may
    /// have been lost while the node was unreachable, so its still-valid
    /// entries must not be extended by later heartbeats. Sealing makes the
    /// conservative bound permanent, exactly preserving what the node could
    /// already prove. Returns the number of entries sealed.
    pub fn seal_still_valid(&mut self) -> u64 {
        let unbounded: Vec<EntryId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.validity.is_unbounded())
            .map(|(id, _)| *id)
            .collect();
        let mut sealed = 0u64;
        for id in unbounded {
            let last_invalidation = self.last_invalidation;
            let Some(entry) = self.entries.get_mut(&id) else {
                continue;
            };
            let upper = entry.validity.effective_upper(last_invalidation);
            entry.validity = ValidityInterval {
                lower: entry.validity.lower,
                upper: Some(upper),
            };
            sealed += 1;
            // No longer still-valid: drop it from the tag indexes.
            let tags: Vec<InvalidationTag> = entry.tags.iter().cloned().collect();
            for tag in tags {
                if let Some(set) = self.tag_index.get_mut(&tag) {
                    set.remove(&id);
                }
                if let Some(set) = self.table_index.get_mut(&tag.table) {
                    set.remove(&id);
                }
            }
        }
        self.stats.sealed_entries += sealed;
        sealed
    }

    // ------------------------------------------------------------------
    // Staleness eviction
    // ------------------------------------------------------------------

    /// Eagerly removes entries whose validity ended before `min_useful_ts`
    /// (no transaction within the staleness limit can ever use them again),
    /// and prunes the invalidation history below the same horizon.
    pub fn evict_stale(&mut self, min_useful_ts: Timestamp) {
        let stale: Vec<EntryId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.validity.upper.is_some_and(|u| u <= min_useful_ts))
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            self.remove_entry(id);
            self.stats.staleness_evictions += 1;
        }
        self.invalidation_history
            .retain(|(ts, _)| *ts >= min_useful_ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> CacheKey {
        CacheKey::new("f", format!("[{i}]"))
    }

    fn node() -> CacheNode {
        CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 10_000,
            },
        )
    }

    fn tags_for(table: &str, id: u64) -> TagSet {
        [InvalidationTag::keyed(table, format!("id={id}"))]
            .into_iter()
            .collect()
    }

    fn insert_simple(n: &mut CacheNode, k: u64, lower: u64) {
        n.insert(
            key(k),
            Bytes::from(vec![1u8; 10]),
            ValidityInterval::unbounded(Timestamp(lower)),
            tags_for("items", k),
            WallClock::ZERO,
        );
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut n = node();
        let out = n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        assert_eq!(out.miss_kind(), Some(MissKind::Compulsory));
        insert_simple(&mut n, 1, 5);
        let out = n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        assert!(out.is_hit());
        assert_eq!(n.stats().hits, 1);
        assert_eq!(n.stats().compulsory_misses, 1);
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.name(), "n0");
    }

    #[test]
    fn lookup_honors_pinset_range_and_returns_most_recent() {
        let mut n = node();
        // Two versions of the same key with disjoint intervals.
        n.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(10), Timestamp(20)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        n.insert(
            key(1),
            Bytes::from_static(b"new"),
            ValidityInterval::bounded(Timestamp(20), Timestamp(30)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        // A request spanning both gets the most recent.
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(15), Timestamp(25)))
        {
            assert_eq!(&value[..], b"new");
        } else {
            panic!("expected hit");
        }
        // A request only the old version satisfies gets the old one.
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(12), Timestamp(15)))
        {
            assert_eq!(&value[..], b"old");
        } else {
            panic!("expected hit");
        }
        // A request outside both is a miss.
        assert!(!n
            .lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(50)))
            .is_hit());
    }

    #[test]
    fn still_valid_entries_bounded_by_last_invalidation() {
        let mut n = node();
        insert_simple(&mut n, 1, 5);
        // No invalidation processed yet: a lookup at ts 50 cannot prove the
        // entry is still current at 50, so it conservatively misses.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)));
        assert!(!out.is_hit());
        // After an unrelated invalidation at 60 the entry is known current
        // through 60.
        n.apply_invalidation(Timestamp(60), &tags_for("users", 9));
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)));
        assert!(out.is_hit());
    }

    #[test]
    fn invalidation_truncates_matching_entries() {
        let mut n = node();
        insert_simple(&mut n, 1, 5);
        insert_simple(&mut n, 2, 5);
        n.apply_invalidation(Timestamp(40), &tags_for("items", 1));
        // Key 1 is now bounded at 40; key 2 unaffected.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(40)));
        assert_eq!(out.miss_kind(), Some(MissKind::Staleness));
        let out = n.lookup(&key(2), &LookupRequest::range(Timestamp(40), Timestamp(40)));
        assert!(out.is_hit());
        assert_eq!(n.stats().invalidated_entries, 1);
        assert_eq!(n.last_invalidation(), Timestamp(40));
    }

    #[test]
    fn wildcard_invalidation_hits_all_entries_on_table() {
        let mut n = node();
        insert_simple(&mut n, 1, 5);
        insert_simple(&mut n, 2, 5);
        let wild: TagSet = [InvalidationTag::wildcard("items")].into_iter().collect();
        n.apply_invalidation(Timestamp(40), &wild);
        assert_eq!(n.stats().invalidated_entries, 2);
    }

    #[test]
    fn keyed_invalidation_hits_wildcard_dependency() {
        let mut n = node();
        let wild_dep: TagSet = [InvalidationTag::wildcard("items")].into_iter().collect();
        n.insert(
            key(1),
            Bytes::from_static(b"scan result"),
            ValidityInterval::unbounded(Timestamp(5)),
            wild_dep,
            WallClock::ZERO,
        );
        n.apply_invalidation(Timestamp(40), &tags_for("items", 77));
        assert_eq!(n.stats().invalidated_entries, 1);
    }

    #[test]
    fn insert_after_invalidation_is_truncated_or_dropped() {
        let mut n = node();
        // The cache has already seen an invalidation for items:id=1 at ts 50.
        n.apply_invalidation(Timestamp(50), &tags_for("items", 1));
        // A stale computation (validity from 40, unbounded) now arrives.
        n.insert(
            key(1),
            Bytes::from_static(b"stale"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        // It must not be served as current at ts >= 50.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(55), Timestamp(55)));
        assert!(!out.is_hit());
        // But it can still serve timestamps in [40, 50).
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(45), Timestamp(45)));
        assert!(out.is_hit());

        // A value computed *after* that commit (validity starting at 50)
        // reflects the update and is served as current.
        n.insert(
            key(1),
            Bytes::from_static(b"recomputed"),
            ValidityInterval::unbounded(Timestamp(50)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)))
        {
            assert_eq!(&value[..], b"recomputed");
        } else {
            panic!("expected hit on the recomputed value");
        }
    }

    #[test]
    fn late_insert_is_truncated_exactly_at_its_own_invalidation() {
        // §4.2 update/insert race, sharpened: a transaction computes a value,
        // its own update's invalidation reaches the cache first, and the
        // insert arrives afterwards with an unbounded interval. The stored
        // entry must be truncated at exactly the invalidation's timestamp.
        let mut n = node();
        n.note_timestamp(Timestamp(100));
        // Two invalidations for the same tag arrive; the EARLIEST one after
        // the entry's validity start must bound the entry.
        n.apply_invalidation(Timestamp(50), &tags_for("items", 1));
        n.apply_invalidation(Timestamp(70), &tags_for("items", 1));
        // An unrelated invalidation must not affect the entry.
        n.apply_invalidation(Timestamp(45), &tags_for("users", 9));

        n.insert(
            key(1),
            Bytes::from_static(b"computed-before-50"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().late_insert_truncations, 1);

        // The stored validity is [40, 50), nothing wider.
        match n.lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(49))) {
            LookupOutcome::Hit {
                stored_validity, ..
            } => {
                assert_eq!(stored_validity.lower, Timestamp(40));
                assert_eq!(stored_validity.upper, Some(Timestamp(50)));
            }
            other => panic!("expected hit below the truncation point, got {other:?}"),
        }
        assert!(!n
            .lookup(
                &key(1),
                &LookupRequest::range(Timestamp(50), Timestamp(100))
            )
            .is_hit());

        // A sibling key on the same table whose tag was NOT invalidated stays
        // unbounded (keyed invalidations are precise).
        n.insert(
            key(2),
            Bytes::from_static(b"untouched"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 2),
            WallClock::ZERO,
        );
        assert!(n
            .lookup(
                &key(2),
                &LookupRequest::range(Timestamp(90), Timestamp(100))
            )
            .is_hit());
        assert_eq!(n.stats().late_insert_truncations, 1);
    }

    #[test]
    fn invalidation_at_the_validity_start_does_not_truncate() {
        // An invalidation at exactly the entry's validity start reflects the
        // update the entry was computed from — it must NOT truncate it.
        let mut n = node();
        n.note_timestamp(Timestamp(100));
        n.apply_invalidation(Timestamp(40), &tags_for("items", 1));
        n.insert(
            key(1),
            Bytes::from_static(b"computed-at-40"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().late_insert_truncations, 0);
        assert!(n
            .lookup(
                &key(1),
                &LookupRequest::range(Timestamp(90), Timestamp(100))
            )
            .is_hit());
    }

    #[test]
    fn seal_still_valid_bounds_entries_at_the_invalidation_horizon() {
        let mut n = node();
        n.note_timestamp(Timestamp(20));
        insert_simple(&mut n, 1, 5);
        // Sealing materializes the conservative bound: valid through 20.
        assert_eq!(n.seal_still_valid(), 1);
        assert_eq!(n.stats().sealed_entries, 1);
        assert!(n
            .lookup(&key(1), &LookupRequest::range(Timestamp(20), Timestamp(20)))
            .is_hit());
        // A later heartbeat must NOT extend a sealed entry: a matching
        // invalidation may have been lost while the client was disconnected.
        n.note_timestamp(Timestamp(100));
        assert!(!n
            .lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)))
            .is_hit());
        // Sealed entries are bounded, so invalidations skip them (their
        // indexes were cleared).
        n.apply_invalidation(Timestamp(60), &tags_for("items", 1));
        assert_eq!(n.stats().invalidated_entries, 0);
        // An idempotent second seal finds nothing still-valid.
        assert_eq!(n.seal_still_valid(), 0);
    }

    #[test]
    fn duplicate_insertions_are_skipped() {
        let mut n = node();
        insert_simple(&mut n, 1, 5);
        insert_simple(&mut n, 1, 5);
        assert_eq!(n.stats().insertions, 1);
        assert_eq!(n.stats().duplicate_insertions, 1);
        assert_eq!(n.entry_count(), 1);
    }

    #[test]
    fn lru_eviction_under_memory_pressure() {
        let mut n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 2_000,
            },
        );
        for i in 0..100 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        assert!(n.used_bytes() <= 2_000);
        assert!(n.stats().lru_evictions > 0);
        assert!(n.entry_count() < 100);
        // Early keys were evicted: their misses are capacity misses.
        let out = n.lookup(&key(0), &LookupRequest::at(Timestamp(1)));
        assert_eq!(out.miss_kind(), Some(MissKind::Capacity));
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        let mut n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 1_000,
            },
        );
        n.apply_invalidation(Timestamp(100), &TagSet::new());
        for i in 0..4 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        // Touch key 0 so it is the most recently used.
        assert!(n
            .lookup(&key(0), &LookupRequest::at(Timestamp(50)))
            .is_hit());
        // Force evictions.
        for i in 10..14 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        assert!(
            n.lookup(&key(0), &LookupRequest::at(Timestamp(50)))
                .is_hit(),
            "recently used key survives eviction"
        );
    }

    #[test]
    fn staleness_eviction_removes_dead_entries() {
        let mut n = node();
        n.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(10), Timestamp(20)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        insert_simple(&mut n, 2, 15);
        n.evict_stale(Timestamp(30));
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.stats().staleness_evictions, 1);
        // Its next miss counts as capacity (the server cannot distinguish).
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(12), Timestamp(12)));
        assert_eq!(out.miss_kind(), Some(MissKind::Capacity));
    }

    #[test]
    fn consistency_miss_classification() {
        let mut n = node();
        // A version valid only in [30, 40).
        n.insert(
            key(1),
            Bytes::from_static(b"v"),
            ValidityInterval::bounded(Timestamp(30), Timestamp(40)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        // The transaction's staleness limit allows anything from ts 20, but
        // its pin set has already narrowed to [22, 25]: a fresh-enough version
        // exists (30..40 ≥ 20) yet none intersects the pin set.
        let req = LookupRequest {
            pinset_lo: Timestamp(22),
            pinset_hi: Timestamp(25),
            freshness_lo: Timestamp(20),
        };
        let out = n.lookup(&key(1), &req);
        assert_eq!(out.miss_kind(), Some(MissKind::Consistency));

        // If even the staleness limit cannot reach any version, it is a
        // staleness miss instead.
        let req = LookupRequest {
            pinset_lo: Timestamp(45),
            pinset_hi: Timestamp(50),
            freshness_lo: Timestamp(45),
        };
        assert_eq!(
            n.lookup(&key(1), &req).miss_kind(),
            Some(MissKind::Staleness)
        );
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut n = node();
        insert_simple(&mut n, 1, 5);
        n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        n.reset_stats();
        assert_eq!(n.stats().lookups(), 0);
        assert!(n.lookup(&key(1), &LookupRequest::at(Timestamp(5))).is_hit());
    }
}
