//! Client-library configuration.

use serde::{Deserialize, Serialize};
use txtypes::Staleness;

/// How the library uses the cache. The non-default modes exist to reproduce
//  the baselines in the paper's evaluation (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheMode {
    /// Normal TxCache operation: transactionally consistent caching.
    Full,
    /// The "No consistency" baseline of Figure 5(a): cached values are used
    /// whenever they were valid at any point within the staleness limit,
    /// ignoring whether they are mutually consistent.
    NoConsistency,
    /// The "No caching" baseline: every cacheable call executes against the
    /// database.
    Disabled,
}

/// When a read-only transaction's timestamp is chosen (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimestampPolicy {
    /// Choose lazily, narrowing a pin set as cached values and query results
    /// are observed (the paper's design).
    Lazy,
    /// Choose a single timestamp when the transaction begins (the
    /// straightforward alternative §6.2 argues against); used for ablation.
    Eager,
}

/// Which cache transport the library uses (§4, §7).
///
/// The addresses and socket options of a remote deployment are not part of
/// this config (it stays `Copy` and serializable); they are supplied when the
/// backend itself is built, e.g. via
/// [`RemoteCluster::connect`](crate::backend::RemoteCluster::connect). The
/// kind recorded here is kept consistent with the active backend by
/// [`TxCache::with_backend`](crate::TxCache::with_backend).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// The cache cluster is linked into the application process and reached
    /// by direct method calls (the historical configuration).
    #[default]
    InProcess,
    /// Cache nodes are separate `txcached` TCP servers reached over the
    /// `wire` protocol (the paper's deployment).
    Remote,
}

/// Configuration of the TxCache client library.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxCacheConfig {
    /// Cache usage mode.
    pub mode: CacheMode,
    /// Cache transport kind (recorded for reporting; the backend object
    /// itself decides).
    pub backend: BackendKind,
    /// Timestamp selection policy.
    pub policy: TimestampPolicy,
    /// If the newest pinned snapshot is older than this many microseconds,
    /// prefer pinning a fresh snapshot over reusing it (the "5 second" rule
    /// of §6.2, balancing snapshot count against data freshness).
    pub pin_reuse_threshold_micros: u64,
    /// Staleness limit used when the application does not specify one.
    pub default_staleness: Staleness,
}

impl Default for TxCacheConfig {
    fn default() -> Self {
        TxCacheConfig {
            mode: CacheMode::Full,
            backend: BackendKind::InProcess,
            policy: TimestampPolicy::Lazy,
            pin_reuse_threshold_micros: 5_000_000,
            default_staleness: Staleness::seconds(30),
        }
    }
}

impl TxCacheConfig {
    /// Convenience constructor for the "no caching" baseline.
    #[must_use]
    pub fn disabled() -> TxCacheConfig {
        TxCacheConfig {
            mode: CacheMode::Disabled,
            ..TxCacheConfig::default()
        }
    }

    /// Convenience constructor for the "no consistency" baseline.
    #[must_use]
    pub fn no_consistency() -> TxCacheConfig {
        TxCacheConfig {
            mode: CacheMode::NoConsistency,
            ..TxCacheConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = TxCacheConfig::default();
        assert_eq!(c.mode, CacheMode::Full);
        assert_eq!(c.backend, BackendKind::InProcess);
        assert_eq!(c.policy, TimestampPolicy::Lazy);
        assert_eq!(c.pin_reuse_threshold_micros, 5_000_000);
        assert_eq!(c.default_staleness, Staleness::seconds(30));
    }

    #[test]
    fn baseline_constructors() {
        assert_eq!(TxCacheConfig::disabled().mode, CacheMode::Disabled);
        assert_eq!(
            TxCacheConfig::no_consistency().mode,
            CacheMode::NoConsistency
        );
    }
}
