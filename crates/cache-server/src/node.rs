//! A single versioned cache node (§4), sharded for concurrent access.
//!
//! The node stores multiple versions per key, each tagged with its validity
//! interval; versions of one key have disjoint intervals because only one
//! value is current at any timestamp. Lookups specify a range of acceptable
//! timestamps and receive the most recent matching version. Still-valid
//! entries carry invalidation tags; when the node processes the invalidation
//! stream it truncates the validity of every affected entry at the update
//! transaction's commit timestamp. Eviction removes already-bounded (stale)
//! entries first, then least-recently-used ones, under a per-shard byte
//! budget.
//!
//! # Concurrency model
//!
//! Storage is split into [`NodeConfig::shards`] key-hash shards
//! ([`crate::shard`]), each behind its own reader/writer lock:
//!
//! * **Lookups** take only the target shard's *shared* lock. The LRU touch
//!   is an atomic store on the entry and statistics are relaxed atomics, so
//!   lookups on distinct keys — and even on the same shard — proceed in
//!   parallel.
//! * **Inserts and evictions** take the target shard's exclusive lock and
//!   nothing else. Eviction is per-shard: stale-first, then LRU, with a
//!   budget of `capacity_bytes / shards`.
//! * **Invalidations** are serialized by a node-level sequencer mutex so the
//!   stream applies in commit order, then routed: a shared-lock pre-check
//!   skips every shard whose tag/table indexes the batch does not touch, and
//!   only touched shards are write-locked.
//! * `last_invalidation` is an atomic timestamp, advanced with release
//!   ordering *after* the matching truncations land, so a lookup that
//!   observes the new horizon is guaranteed to see the truncated entries.
//!
//! Lock order: the sequencer is taken before anything else; the invalidation
//! history lock is never held while acquiring a shard lock (the insert path
//! acquires shard → history, the invalidation path acquires history and
//! releases it *before* touching shards), so the two orders cannot deadlock.
//!
//! # Bounded invalidation history
//!
//! The §4.2 insert/invalidate race check consults the history of processed
//! invalidations. The history is bounded two ways: `evict_stale` prunes
//! events below the staleness horizon, and [`NodeConfig::history_limit`]
//! caps its length outright. Pruning records a *floor* — the newest
//! timestamp ever dropped — and a still-valid insert whose validity begins
//! below the floor is conservatively rejected (counted as
//! `history_floor_drops`): the node can no longer prove no matching
//! invalidation hit the gap, so serving the value could violate §4.2.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};

use crate::entry::{CacheEntry, LookupOutcome, LookupRequest, MissKind};
use crate::shard::{EntryId, Shard, StoredEntry};
use crate::stats::{AtomicCacheStats, CacheShardStats, CacheStats};

/// Configuration of a cache node.
#[derive(Debug, Clone, Copy)]
pub struct NodeConfig {
    /// Memory budget for cached data, in bytes (split evenly across shards).
    pub capacity_bytes: usize,
    /// Number of key-hash shards the store is split into. More shards mean
    /// less lock contention; 1 reproduces the old monolithic node.
    pub shards: usize,
    /// Maximum invalidation-history events retained for the §4.2 race
    /// check; exceeding it advances the history floor.
    pub history_limit: usize,
    /// Per-request observability on the hosting server (opcode latency
    /// histograms, slow-op tracing). Off, the server takes no per-request
    /// clock readings at all — the no-op mode the instrumentation-overhead
    /// benchmark compares against.
    pub metrics: bool,
    /// Requests whose end-to-end latency reaches this many microseconds are
    /// captured (with their span trail) in the server's slow-op ring.
    /// `u64::MAX` disables capture; 0 captures everything.
    pub slow_op_threshold_us: u64,
    /// Test hook: hold every request for this many microseconds before
    /// dispatch, so tests can exercise the slow-op recorder
    /// deterministically. Zero (the default) in any real deployment.
    pub inject_delay_us: u64,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            capacity_bytes: 64 << 20,
            shards: 8,
            history_limit: 4096,
            metrics: true,
            slow_op_threshold_us: 10_000,
            inject_delay_us: 0,
        }
    }
}

/// History of processed invalidations, used to close the insert/invalidate
/// race for entries inserted with an unbounded interval (§4.2).
#[derive(Debug)]
struct InvalidationHistory {
    /// `(commit timestamp, tags)` in commit order.
    events: std::collections::VecDeque<(Timestamp, TagSet)>,
    /// Newest timestamp ever pruned from `events`. Inserts whose validity
    /// begins below the floor cannot be race-checked and are rejected.
    floor: Timestamp,
}

impl Default for InvalidationHistory {
    fn default() -> Self {
        InvalidationHistory {
            events: std::collections::VecDeque::new(),
            floor: Timestamp::ZERO,
        }
    }
}

/// One cache server process.
#[derive(Debug)]
pub struct CacheNode {
    name: String,
    config: NodeConfig,
    shards: Vec<Shard>,
    /// Node-wide access clock for LRU ordering.
    tick: AtomicU64,
    /// Node-wide entry-id allocator.
    next_id: AtomicU64,
    /// Timestamp of the most recent invalidation message processed, advanced
    /// only after its truncations land (see the module docs).
    last_invalidation: AtomicU64,
    /// Serializes the invalidation stream in commit order.
    sequencer: Mutex<()>,
    history: RwLock<InvalidationHistory>,
    /// Node-scoped counters (invalidation messages; everything keyed to a
    /// shard lives in that shard's bank).
    node_stats: AtomicCacheStats,
}

impl CacheNode {
    /// Creates an empty node.
    #[must_use]
    pub fn new(name: impl Into<String>, config: NodeConfig) -> CacheNode {
        let shard_count = config.shards.max(1);
        CacheNode {
            name: name.into(),
            config,
            shards: (0..shard_count).map(|_| Shard::default()).collect(),
            tick: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            last_invalidation: AtomicU64::new(0),
            sequencer: Mutex::new(()),
            history: RwLock::new(InvalidationHistory::default()),
            node_stats: AtomicCacheStats::default(),
        }
    }

    /// The node's name (used by the consistent-hash ring and diagnostics).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of key-hash shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Bytes of cached data currently stored.
    #[must_use]
    pub fn used_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.peek().used_bytes).sum()
    }

    /// Number of entries currently stored.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| s.peek().entries.len()).sum()
    }

    /// The node's statistics, aggregated across shards.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        self.node_stats.add_into(&mut total);
        for shard in &self.shards {
            shard.stats.add_into(&mut total);
            total.used_bytes += shard.peek().used_bytes as u64;
        }
        total
    }

    /// Per-shard lock-contention and eviction counters (the cache-tier
    /// mirror of `mvdb::Database::shard_stats`).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let data = shard.peek();
                CacheShardStats {
                    shard: i,
                    read_locks: shard.read_locks.load(Ordering::Relaxed),
                    write_locks: shard.write_locks.load(Ordering::Relaxed),
                    read_waits: shard.read_waits.load(Ordering::Relaxed),
                    write_waits: shard.write_waits.load(Ordering::Relaxed),
                    lru_evictions: shard.stats.lru_evictions.get(),
                    staleness_evictions: shard.stats.staleness_evictions.get(),
                    entries: data.entries.len() as u64,
                    used_bytes: data.used_bytes as u64,
                }
            })
            .collect()
    }

    /// Resets the hit/miss and lock counters (contents are untouched).
    pub fn reset_stats(&self) {
        self.node_stats.reset();
        for shard in &self.shards {
            shard.stats.reset();
            shard.reset_lock_stats();
        }
    }

    /// The timestamp of the last invalidation message processed.
    #[must_use]
    pub fn last_invalidation(&self) -> Timestamp {
        Timestamp(self.last_invalidation.load(Ordering::Acquire))
    }

    /// Number of invalidation-history events currently retained.
    #[must_use]
    pub fn invalidation_history_len(&self) -> usize {
        self.history.read().events.len()
    }

    /// Newest timestamp ever pruned from the invalidation history
    /// ([`Timestamp::ZERO`] while nothing was pruned).
    #[must_use]
    pub fn history_floor(&self) -> Timestamp {
        self.history.read().floor
    }

    /// The shard responsible for `key`.
    fn shard_of(&self, key: &CacheKey) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Per-shard byte budget.
    fn shard_budget(&self) -> usize {
        (self.config.capacity_bytes / self.shards.len()).max(1)
    }

    // ------------------------------------------------------------------
    // Lookup
    // ------------------------------------------------------------------

    /// Looks up `key` for a transaction whose acceptable timestamps are
    /// described by `request`. Returns the most recent matching version, or a
    /// classified miss. Takes only the responsible shard's shared lock.
    pub fn lookup(&self, key: &CacheKey, request: &LookupRequest) -> LookupOutcome {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let last_invalidation = self.last_invalidation();
        let shard = self.shard_of(key);
        let data = shard.read();
        let Some(ids) = data.by_key.get(key) else {
            let kind = if data.known_keys.contains(key) {
                MissKind::Capacity
            } else {
                MissKind::Compulsory
            };
            shard.stats.record_miss(kind);
            return LookupOutcome::Miss(kind);
        };

        // Find the matching version with the largest lower bound (most
        // recent), treating still-valid entries as bounded by the last
        // processed invalidation.
        let mut best: Option<(EntryId, ValidityInterval)> = None;
        let mut fresh_enough_exists = false;
        let mut any_version = false;
        for id in ids {
            let Some(stored) = data.entries.get(id) else {
                continue;
            };
            any_version = true;
            let effective_upper = stored.entry.validity.effective_upper(last_invalidation);
            let effective = ValidityInterval {
                lower: stored.entry.validity.lower,
                upper: Some(effective_upper),
            };
            // Fresh enough to satisfy the staleness limit alone?
            if effective.intersects_range(request.freshness_lo, Timestamp::MAX) {
                fresh_enough_exists = true;
            }
            if effective.intersects_range(request.pinset_lo, request.pinset_hi) {
                match &best {
                    Some((_, b)) if b.lower >= effective.lower => {}
                    _ => best = Some((*id, effective)),
                }
            }
        }

        if let Some((id, effective)) = best {
            let stored = &data.entries[&id];
            stored.last_access.store(tick, Ordering::Relaxed);
            shard.stats.hits.bump();
            return LookupOutcome::Hit {
                value: stored.entry.value.clone(),
                validity: effective,
                stored_validity: stored.entry.validity,
                tags: stored.entry.tags.clone(),
            };
        }

        let kind = if !any_version {
            if data.known_keys.contains(key) {
                MissKind::Capacity
            } else {
                MissKind::Compulsory
            }
        } else if fresh_enough_exists {
            MissKind::Consistency
        } else {
            MissKind::Staleness
        };
        shard.stats.record_miss(kind);
        LookupOutcome::Miss(kind)
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts a value computed by the TxCache library.
    ///
    /// If the entry is still valid (unbounded interval) the node first checks
    /// the invalidations it has already processed: any matching invalidation
    /// newer than the entry's lower bound truncates it immediately, closing
    /// the race between an update committing and the freshly-computed (but
    /// already stale) value arriving at the cache. Still-valid entries whose
    /// validity begins below the pruned-history floor are rejected — the
    /// check can no longer be performed for them.
    pub fn insert(
        &self,
        key: CacheKey,
        value: Bytes,
        mut validity: ValidityInterval,
        tags: TagSet,
        now: WallClock,
    ) {
        let shard = self.shard_of(&key);
        let mut data = shard.write();
        data.known_keys.insert(key.clone());

        // Close the insert/invalidate race for still-valid entries. The
        // history lock is taken *inside* the shard lock; the invalidation
        // path never holds the history lock while acquiring a shard lock, so
        // this order is deadlock-free — and it is what closes the race: the
        // invalidation stream appends to the history before scanning shards,
        // so either this read sees the event, or the scan sees this entry.
        if validity.is_unbounded() {
            let history = self.history.read();
            if validity.lower < history.floor && !tags.is_empty() {
                shard.stats.history_floor_drops.bump();
                return;
            }
            let mut earliest_hit: Option<Timestamp> = None;
            for (ts, inv_tags) in &history.events {
                if *ts > validity.lower && tags.intersects(inv_tags) {
                    earliest_hit = Some(match earliest_hit {
                        Some(cur) => cur.min(*ts),
                        None => *ts,
                    });
                }
            }
            drop(history);
            if let Some(ts) = earliest_hit {
                match validity.truncate_at(ts) {
                    Some(truncated) => {
                        validity = truncated;
                        shard.stats.late_insert_truncations.bump();
                    }
                    None => return, // the value was never current as far as the cache can tell
                }
            }
        }

        // Skip the insert if an existing version already covers the interval.
        if let Some(ids) = data.by_key.get(&key) {
            for id in ids {
                if let Some(existing) = data.entries.get(id) {
                    let covers = existing.entry.validity.lower <= validity.lower
                        && match (existing.entry.validity.upper, validity.upper) {
                            (None, _) => true,
                            (Some(a), Some(b)) => a >= b,
                            (Some(_), None) => false,
                        };
                    if covers {
                        shard.stats.duplicate_insertions.bump();
                        return;
                    }
                }
            }
        }

        let entry = CacheEntry {
            key: key.clone(),
            value,
            validity,
            tags,
            inserted_at: now,
        };
        let size = entry.size_bytes();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;

        if validity.is_unbounded() {
            for tag in entry.tags.iter() {
                data.tag_index.entry(tag.clone()).or_default().insert(id);
                data.table_index
                    .entry(tag.table.clone())
                    .or_default()
                    .insert(id);
            }
        }
        data.by_key.entry(key).or_default().push(id);
        data.used_bytes += size;
        data.entries.insert(
            id,
            StoredEntry {
                entry,
                last_access: AtomicU64::new(tick),
            },
        );
        shard.stats.insertions.bump();

        Self::enforce_capacity(&mut data, &shard.stats, self.shard_budget());
    }

    /// Evicts entries until the shard fits its budget: already-bounded
    /// (stale) entries first, oldest validity first, then unbounded entries
    /// in least-recently-used order.
    ///
    /// The victim scan sorts the shard's entries, so each pass evicts down
    /// to a low-water mark a sixteenth below the budget rather than to the
    /// budget itself: a shard running at its budget amortizes one scan over
    /// the many inserts that fit in the freed margin, instead of paying a
    /// full sort per insert.
    fn enforce_capacity(
        data: &mut crate::shard::ShardData,
        stats: &AtomicCacheStats,
        budget: usize,
    ) {
        if data.used_bytes <= budget {
            return;
        }
        let low_water = budget - budget / 16;
        let mut bounded: Vec<(Timestamp, EntryId)> = Vec::new();
        let mut unbounded: Vec<(u64, EntryId)> = Vec::new();
        for (id, stored) in &data.entries {
            match stored.entry.validity.upper {
                Some(upper) => bounded.push((upper, *id)),
                None => unbounded.push((stored.last_access.load(Ordering::Relaxed), *id)),
            }
        }
        bounded.sort_unstable();
        unbounded.sort_unstable();
        for id in bounded
            .into_iter()
            .map(|(_, id)| id)
            .chain(unbounded.into_iter().map(|(_, id)| id))
        {
            if data.used_bytes <= low_water {
                break;
            }
            data.remove_entry(id);
            stats.lru_evictions.bump();
        }
    }

    // ------------------------------------------------------------------
    // Invalidation
    // ------------------------------------------------------------------

    /// Processes one invalidation-stream message: truncates the validity of
    /// every still-valid entry whose dependency tags match, and advances the
    /// node's notion of "now" in timestamp space. Messages must arrive in
    /// commit order; the node-level sequencer serializes concurrent callers.
    pub fn apply_invalidation(&self, timestamp: Timestamp, tags: &TagSet) {
        let _seq = self.sequencer.lock();
        self.apply_invalidation_sequenced(timestamp, tags);
    }

    /// Applies a commit-ordered batch of invalidations under one acquisition
    /// of the sequencer, then advances the heartbeat. Returns the number of
    /// events applied.
    pub fn apply_invalidation_batch<I>(&self, events: I, heartbeat: Timestamp) -> u64
    where
        I: IntoIterator<Item = (Timestamp, TagSet)>,
    {
        let _seq = self.sequencer.lock();
        let mut applied = 0u64;
        for (timestamp, tags) in events {
            self.apply_invalidation_sequenced(timestamp, &tags);
            applied += 1;
        }
        self.last_invalidation
            .fetch_max(heartbeat.0, Ordering::AcqRel);
        applied
    }

    /// The body of [`CacheNode::apply_invalidation`]; the caller holds the
    /// sequencer.
    fn apply_invalidation_sequenced(&self, timestamp: Timestamp, tags: &TagSet) {
        // An empty tag set (a commit with no cacheable dependencies) can
        // never truncate anything — on the shards now or via the insert
        // race check later. Recording it would only burn bounded-history
        // slots and ratchet the floor; just advance the horizon.
        if tags.is_empty() {
            self.last_invalidation
                .fetch_max(timestamp.0, Ordering::AcqRel);
            self.node_stats.invalidation_messages.bump();
            return;
        }

        // Record the event *before* scanning shards (and release the history
        // lock before taking any shard lock — see the module docs for why
        // both orderings matter).
        {
            let mut history = self.history.write();
            history.events.push_back((timestamp, tags.clone()));
            let limit = self.config.history_limit.max(1);
            while history.events.len() > limit {
                if let Some((dropped_ts, _)) = history.events.pop_front() {
                    history.floor = history.floor.max(dropped_ts);
                }
            }
        }

        for shard in &self.shards {
            // Shared-lock pre-check: shards whose indexes the batch does not
            // touch are never write-locked by the invalidation stream.
            if !shard.read().touched_by(tags) {
                continue;
            }
            let mut data = shard.write();
            let affected = data.affected_by(tags);
            for id in affected {
                let Some(stored) = data.entries.get_mut(&id) else {
                    continue;
                };
                if !stored.entry.validity.is_unbounded() {
                    continue;
                }
                match stored.entry.validity.truncate_at(timestamp) {
                    Some(truncated) => {
                        stored.entry.validity = truncated;
                        shard.stats.invalidated_entries.bump();
                        // No longer still-valid: drop it from the tag indexes.
                        let entry_tags = stored.entry.tags.clone();
                        data.unindex_tags(id, &entry_tags);
                    }
                    None => {
                        // The entry was never valid before this invalidation —
                        // discard it outright.
                        data.remove_entry(id);
                        shard.stats.invalidated_entries.bump();
                    }
                }
            }
        }

        // Advance the horizon only now: a lookup that observes the new value
        // is guaranteed (release/acquire) to see the truncations above.
        self.last_invalidation
            .fetch_max(timestamp.0, Ordering::AcqRel);
        self.node_stats.invalidation_messages.bump();
    }

    /// Informs the node that every invalidation up to `ts` has been
    /// delivered (a heartbeat). Still-valid entries may then be served for
    /// lookups up to `ts` even when no recent commit touched their tags.
    /// The caller must have already delivered every invalidation message with
    /// a timestamp at or below `ts`.
    pub fn note_timestamp(&self, ts: Timestamp) {
        self.last_invalidation.fetch_max(ts.0, Ordering::AcqRel);
    }

    /// Bounds every still-valid entry at the conservative upper bound
    /// lookups already apply (the §4.2 rule: valid only through the last
    /// processed invalidation).
    ///
    /// A client calls this — via the wire protocol's `SealStillValid` —
    /// after healing a broken connection: invalidation-stream messages may
    /// have been lost while the node was unreachable, so its still-valid
    /// entries must not be extended by later heartbeats. Sealing makes the
    /// conservative bound permanent, exactly preserving what the node could
    /// already prove. Returns the number of entries sealed.
    pub fn seal_still_valid(&self) -> u64 {
        let _seq = self.sequencer.lock();
        let horizon = self.last_invalidation();
        let mut sealed = 0u64;
        for shard in &self.shards {
            let mut data = shard.write();
            let unbounded: Vec<EntryId> = data
                .entries
                .iter()
                .filter(|(_, stored)| stored.entry.validity.is_unbounded())
                .map(|(id, _)| *id)
                .collect();
            let mut shard_sealed = 0u64;
            for id in unbounded {
                let Some(stored) = data.entries.get_mut(&id) else {
                    continue;
                };
                let upper = stored.entry.validity.effective_upper(horizon);
                stored.entry.validity = ValidityInterval {
                    lower: stored.entry.validity.lower,
                    upper: Some(upper),
                };
                shard_sealed += 1;
                // No longer still-valid: drop it from the tag indexes.
                let entry_tags = stored.entry.tags.clone();
                data.unindex_tags(id, &entry_tags);
            }
            shard.stats.sealed_entries.add(shard_sealed);
            sealed += shard_sealed;
        }
        sealed
    }

    // ------------------------------------------------------------------
    // Staleness eviction / maintenance
    // ------------------------------------------------------------------

    /// Eagerly removes entries whose validity ended before `min_useful_ts`
    /// (no transaction within the staleness limit can ever use them again),
    /// rebalances every shard back under its byte budget, and prunes the
    /// invalidation history below the same horizon.
    pub fn evict_stale(&self, min_useful_ts: Timestamp) {
        let budget = self.shard_budget();
        for shard in &self.shards {
            let mut data = shard.write();
            let stale: Vec<EntryId> = data
                .entries
                .iter()
                .filter(|(_, stored)| {
                    stored
                        .entry
                        .validity
                        .upper
                        .is_some_and(|u| u <= min_useful_ts)
                })
                .map(|(id, _)| *id)
                .collect();
            for id in stale {
                data.remove_entry(id);
                shard.stats.staleness_evictions.bump();
            }
            // Maintenance-time rebalance: a shard that drifted over its
            // budget (e.g. after a capacity reconfiguration) is trimmed here
            // rather than only on its next insert.
            Self::enforce_capacity(&mut data, &shard.stats, budget);
        }
        let mut history = self.history.write();
        let mut dropped_max: Option<Timestamp> = None;
        history.events.retain(|(ts, _)| {
            if *ts >= min_useful_ts {
                true
            } else {
                dropped_max = Some(dropped_max.map_or(*ts, |m| m.max(*ts)));
                false
            }
        });
        if let Some(ts) = dropped_max {
            history.floor = history.floor.max(ts);
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (test support)
    // ------------------------------------------------------------------

    /// Verifies the node's structural invariants, returning a description of
    /// the first violation found. Used by the concurrency stress tests; it
    /// takes every shard's shared lock, so call it only at quiescent points.
    pub fn validate_invariants(&self) -> Result<(), String> {
        // Snapshot the history first: holding its lock while acquiring shard
        // locks could deadlock against an insert (shard → history) queued
        // behind a pending history writer.
        let history_events: Vec<(Timestamp, TagSet)> =
            self.history.read().events.iter().cloned().collect();
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let data = shard.peek();

            // Byte accounting matches the live entries.
            let actual: usize = data
                .entries
                .values()
                .map(|stored| stored.entry.size_bytes())
                .sum();
            if actual != data.used_bytes {
                return Err(format!(
                    "shard {shard_idx}: used_bytes {} != live entry bytes {actual}",
                    data.used_bytes
                ));
            }

            // by_key lists exactly the live entries, under the right key.
            let mut listed: HashSet<EntryId> = HashSet::new();
            for (key, ids) in &data.by_key {
                for id in ids {
                    let Some(stored) = data.entries.get(id) else {
                        return Err(format!(
                            "shard {shard_idx}: by_key[{key:?}] lists dead entry {id}"
                        ));
                    };
                    if stored.entry.key != *key {
                        return Err(format!(
                            "shard {shard_idx}: entry {id} filed under the wrong key"
                        ));
                    }
                    listed.insert(*id);
                }
            }
            if listed.len() != data.entries.len() {
                return Err(format!(
                    "shard {shard_idx}: {} entries live but {} listed in by_key",
                    data.entries.len(),
                    listed.len()
                ));
            }

            // Versions of one key have pairwise disjoint validity intervals.
            for (key, ids) in &data.by_key {
                let mut intervals: Vec<ValidityInterval> = ids
                    .iter()
                    .filter_map(|id| data.entries.get(id))
                    .map(|stored| stored.entry.validity)
                    .collect();
                intervals.sort_by_key(|iv| iv.lower);
                for pair in intervals.windows(2) {
                    let disjoint = match pair[0].upper {
                        None => false,
                        Some(upper) => upper <= pair[1].lower,
                    };
                    if !disjoint {
                        return Err(format!(
                            "shard {shard_idx}: key {key:?} has overlapping versions \
                             {:?} and {:?}",
                            pair[0], pair[1]
                        ));
                    }
                }
            }

            // Tag indexes hold exactly the still-valid entries.
            for (tag, ids) in &data.tag_index {
                for id in ids {
                    let Some(stored) = data.entries.get(id) else {
                        return Err(format!(
                            "shard {shard_idx}: tag_index[{tag}] lists dead entry {id}"
                        ));
                    };
                    if !stored.entry.validity.is_unbounded() {
                        return Err(format!(
                            "shard {shard_idx}: bounded entry {id} still in tag_index[{tag}]"
                        ));
                    }
                }
            }
            for (id, stored) in &data.entries {
                if !stored.entry.validity.is_unbounded() {
                    continue;
                }
                for tag in stored.entry.tags.iter() {
                    if !data.tag_index.get(tag).is_some_and(|s| s.contains(id)) {
                        return Err(format!(
                            "shard {shard_idx}: still-valid entry {id} missing from \
                             tag_index[{tag}]"
                        ));
                    }
                    if !data
                        .table_index
                        .get(&tag.table)
                        .is_some_and(|s| s.contains(id))
                    {
                        return Err(format!(
                            "shard {shard_idx}: still-valid entry {id} missing from \
                             table_index[{}]",
                            tag.table
                        ));
                    }
                }

                // §4.2: no still-valid entry survives a matching
                // invalidation the node has processed.
                for (ts, inv_tags) in &history_events {
                    if *ts > stored.entry.validity.lower && stored.entry.tags.intersects(inv_tags) {
                        return Err(format!(
                            "shard {shard_idx}: still-valid entry {id} (from {:?}) survived a \
                             matching invalidation at {ts:?}",
                            stored.entry.validity.lower
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn key(i: u64) -> CacheKey {
        CacheKey::new("f", format!("[{i}]"))
    }

    fn node() -> CacheNode {
        CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 10_000,
                ..NodeConfig::default()
            },
        )
    }

    fn tags_for(table: &str, id: u64) -> TagSet {
        [InvalidationTag::keyed(table, format!("id={id}"))]
            .into_iter()
            .collect()
    }

    fn insert_simple(n: &CacheNode, k: u64, lower: u64) {
        n.insert(
            key(k),
            Bytes::from(vec![1u8; 10]),
            ValidityInterval::unbounded(Timestamp(lower)),
            tags_for("items", k),
            WallClock::ZERO,
        );
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let n = node();
        let out = n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        assert_eq!(out.miss_kind(), Some(MissKind::Compulsory));
        insert_simple(&n, 1, 5);
        let out = n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        assert!(out.is_hit());
        assert_eq!(n.stats().hits, 1);
        assert_eq!(n.stats().compulsory_misses, 1);
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.name(), "n0");
        n.validate_invariants().unwrap();
    }

    #[test]
    fn lookup_honors_pinset_range_and_returns_most_recent() {
        let n = node();
        // Two versions of the same key with disjoint intervals.
        n.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(10), Timestamp(20)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        n.insert(
            key(1),
            Bytes::from_static(b"new"),
            ValidityInterval::bounded(Timestamp(20), Timestamp(30)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        // A request spanning both gets the most recent.
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(15), Timestamp(25)))
        {
            assert_eq!(&value[..], b"new");
        } else {
            panic!("expected hit");
        }
        // A request only the old version satisfies gets the old one.
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(12), Timestamp(15)))
        {
            assert_eq!(&value[..], b"old");
        } else {
            panic!("expected hit");
        }
        // A request outside both is a miss.
        assert!(!n
            .lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(50)))
            .is_hit());
        n.validate_invariants().unwrap();
    }

    #[test]
    fn still_valid_entries_bounded_by_last_invalidation() {
        let n = node();
        insert_simple(&n, 1, 5);
        // No invalidation processed yet: a lookup at ts 50 cannot prove the
        // entry is still current at 50, so it conservatively misses.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)));
        assert!(!out.is_hit());
        // After an unrelated invalidation at 60 the entry is known current
        // through 60.
        n.apply_invalidation(Timestamp(60), &tags_for("users", 9));
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)));
        assert!(out.is_hit());
    }

    #[test]
    fn invalidation_truncates_matching_entries() {
        let n = node();
        insert_simple(&n, 1, 5);
        insert_simple(&n, 2, 5);
        n.apply_invalidation(Timestamp(40), &tags_for("items", 1));
        // Key 1 is now bounded at 40; key 2 unaffected.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(40)));
        assert_eq!(out.miss_kind(), Some(MissKind::Staleness));
        let out = n.lookup(&key(2), &LookupRequest::range(Timestamp(40), Timestamp(40)));
        assert!(out.is_hit());
        assert_eq!(n.stats().invalidated_entries, 1);
        assert_eq!(n.last_invalidation(), Timestamp(40));
        n.validate_invariants().unwrap();
    }

    #[test]
    fn wildcard_invalidation_hits_all_entries_on_table() {
        let n = node();
        insert_simple(&n, 1, 5);
        insert_simple(&n, 2, 5);
        let wild: TagSet = [InvalidationTag::wildcard("items")].into_iter().collect();
        n.apply_invalidation(Timestamp(40), &wild);
        assert_eq!(n.stats().invalidated_entries, 2);
        n.validate_invariants().unwrap();
    }

    #[test]
    fn keyed_invalidation_hits_wildcard_dependency() {
        let n = node();
        let wild_dep: TagSet = [InvalidationTag::wildcard("items")].into_iter().collect();
        n.insert(
            key(1),
            Bytes::from_static(b"scan result"),
            ValidityInterval::unbounded(Timestamp(5)),
            wild_dep,
            WallClock::ZERO,
        );
        n.apply_invalidation(Timestamp(40), &tags_for("items", 77));
        assert_eq!(n.stats().invalidated_entries, 1);
    }

    #[test]
    fn insert_after_invalidation_is_truncated_or_dropped() {
        let n = node();
        // The cache has already seen an invalidation for items:id=1 at ts 50.
        n.apply_invalidation(Timestamp(50), &tags_for("items", 1));
        // A stale computation (validity from 40, unbounded) now arrives.
        n.insert(
            key(1),
            Bytes::from_static(b"stale"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        // It must not be served as current at ts >= 50.
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(55), Timestamp(55)));
        assert!(!out.is_hit());
        // But it can still serve timestamps in [40, 50).
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(45), Timestamp(45)));
        assert!(out.is_hit());

        // A value computed *after* that commit (validity starting at 50)
        // reflects the update and is served as current.
        n.insert(
            key(1),
            Bytes::from_static(b"recomputed"),
            ValidityInterval::unbounded(Timestamp(50)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        if let LookupOutcome::Hit { value, .. } =
            n.lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)))
        {
            assert_eq!(&value[..], b"recomputed");
        } else {
            panic!("expected hit on the recomputed value");
        }
        n.validate_invariants().unwrap();
    }

    #[test]
    fn late_insert_is_truncated_exactly_at_its_own_invalidation() {
        // §4.2 update/insert race, sharpened: a transaction computes a value,
        // its own update's invalidation reaches the cache first, and the
        // insert arrives afterwards with an unbounded interval. The stored
        // entry must be truncated at exactly the invalidation's timestamp.
        let n = node();
        n.note_timestamp(Timestamp(100));
        // Two invalidations for the same tag arrive; the EARLIEST one after
        // the entry's validity start must bound the entry.
        n.apply_invalidation(Timestamp(50), &tags_for("items", 1));
        n.apply_invalidation(Timestamp(70), &tags_for("items", 1));
        // An unrelated invalidation must not affect the entry.
        n.apply_invalidation(Timestamp(45), &tags_for("users", 9));

        n.insert(
            key(1),
            Bytes::from_static(b"computed-before-50"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().late_insert_truncations, 1);

        // The stored validity is [40, 50), nothing wider.
        match n.lookup(&key(1), &LookupRequest::range(Timestamp(40), Timestamp(49))) {
            LookupOutcome::Hit {
                stored_validity, ..
            } => {
                assert_eq!(stored_validity.lower, Timestamp(40));
                assert_eq!(stored_validity.upper, Some(Timestamp(50)));
            }
            other => panic!("expected hit below the truncation point, got {other:?}"),
        }
        assert!(!n
            .lookup(
                &key(1),
                &LookupRequest::range(Timestamp(50), Timestamp(100))
            )
            .is_hit());

        // A sibling key on the same table whose tag was NOT invalidated stays
        // unbounded (keyed invalidations are precise).
        n.insert(
            key(2),
            Bytes::from_static(b"untouched"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 2),
            WallClock::ZERO,
        );
        assert!(n
            .lookup(
                &key(2),
                &LookupRequest::range(Timestamp(90), Timestamp(100))
            )
            .is_hit());
        assert_eq!(n.stats().late_insert_truncations, 1);
    }

    #[test]
    fn invalidation_at_the_validity_start_does_not_truncate() {
        // An invalidation at exactly the entry's validity start reflects the
        // update the entry was computed from — it must NOT truncate it.
        let n = node();
        n.note_timestamp(Timestamp(100));
        n.apply_invalidation(Timestamp(40), &tags_for("items", 1));
        n.insert(
            key(1),
            Bytes::from_static(b"computed-at-40"),
            ValidityInterval::unbounded(Timestamp(40)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().late_insert_truncations, 0);
        assert!(n
            .lookup(
                &key(1),
                &LookupRequest::range(Timestamp(90), Timestamp(100))
            )
            .is_hit());
    }

    #[test]
    fn seal_still_valid_bounds_entries_at_the_invalidation_horizon() {
        let n = node();
        n.note_timestamp(Timestamp(20));
        insert_simple(&n, 1, 5);
        // Sealing materializes the conservative bound: valid through 20.
        assert_eq!(n.seal_still_valid(), 1);
        assert_eq!(n.stats().sealed_entries, 1);
        assert!(n
            .lookup(&key(1), &LookupRequest::range(Timestamp(20), Timestamp(20)))
            .is_hit());
        // A later heartbeat must NOT extend a sealed entry: a matching
        // invalidation may have been lost while the client was disconnected.
        n.note_timestamp(Timestamp(100));
        assert!(!n
            .lookup(&key(1), &LookupRequest::range(Timestamp(50), Timestamp(50)))
            .is_hit());
        // Sealed entries are bounded, so invalidations skip them (their
        // indexes were cleared).
        n.apply_invalidation(Timestamp(60), &tags_for("items", 1));
        assert_eq!(n.stats().invalidated_entries, 0);
        // An idempotent second seal finds nothing still-valid.
        assert_eq!(n.seal_still_valid(), 0);
        n.validate_invariants().unwrap();
    }

    #[test]
    fn duplicate_insertions_are_skipped() {
        let n = node();
        insert_simple(&n, 1, 5);
        insert_simple(&n, 1, 5);
        assert_eq!(n.stats().insertions, 1);
        assert_eq!(n.stats().duplicate_insertions, 1);
        assert_eq!(n.entry_count(), 1);
    }

    #[test]
    fn lru_eviction_under_memory_pressure() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 2_000,
                shards: 4,
                ..NodeConfig::default()
            },
        );
        for i in 0..100 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        assert!(n.used_bytes() <= 2_000);
        assert!(n.stats().lru_evictions > 0);
        assert!(n.entry_count() < 100);
        // Early keys were evicted: their misses are capacity misses.
        let out = n.lookup(&key(0), &LookupRequest::at(Timestamp(1)));
        assert_eq!(out.miss_kind(), Some(MissKind::Capacity));
        n.validate_invariants().unwrap();
    }

    #[test]
    fn lru_keeps_recently_used_entries() {
        // One shard so the LRU order is node-wide, as in the monolithic node.
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 1_000,
                shards: 1,
                ..NodeConfig::default()
            },
        );
        n.apply_invalidation(Timestamp(100), &TagSet::new());
        for i in 0..4 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        // Touch key 0 so it is the most recently used.
        assert!(n
            .lookup(&key(0), &LookupRequest::at(Timestamp(50)))
            .is_hit());
        // Force evictions.
        for i in 10..14 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(1)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        assert!(
            n.lookup(&key(0), &LookupRequest::at(Timestamp(50)))
                .is_hit(),
            "recently used key survives eviction"
        );
    }

    #[test]
    fn capacity_eviction_removes_stale_entries_first() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 800,
                shards: 1,
                ..NodeConfig::default()
            },
        );
        n.apply_invalidation(Timestamp(100), &TagSet::new());
        // A bounded (already superseded) version, never touched again.
        n.insert(
            key(1),
            Bytes::from(vec![0u8; 100]),
            ValidityInterval::bounded(Timestamp(1), Timestamp(10)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        // Still-valid entries inserted later (more recently used).
        for i in 2..5 {
            n.insert(
                key(i),
                Bytes::from(vec![0u8; 100]),
                ValidityInterval::unbounded(Timestamp(10)),
                TagSet::new(),
                WallClock::ZERO,
            );
        }
        // The next insert overflows the budget: the stale bounded version
        // goes first even though the unbounded ones are older than nothing.
        n.insert(
            key(5),
            Bytes::from(vec![0u8; 100]),
            ValidityInterval::unbounded(Timestamp(10)),
            TagSet::new(),
            WallClock::ZERO,
        );
        assert!(!n
            .lookup(&key(1), &LookupRequest::range(Timestamp(5), Timestamp(5)))
            .is_hit());
        for i in 2..6 {
            assert!(
                n.lookup(&key(i), &LookupRequest::at(Timestamp(50)))
                    .is_hit(),
                "still-valid key {i} survives while a stale version existed"
            );
        }
        n.validate_invariants().unwrap();
    }

    #[test]
    fn staleness_eviction_removes_dead_entries() {
        let n = node();
        n.insert(
            key(1),
            Bytes::from_static(b"old"),
            ValidityInterval::bounded(Timestamp(10), Timestamp(20)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        insert_simple(&n, 2, 15);
        n.evict_stale(Timestamp(30));
        assert_eq!(n.entry_count(), 1);
        assert_eq!(n.stats().staleness_evictions, 1);
        // Its next miss counts as capacity (the server cannot distinguish).
        let out = n.lookup(&key(1), &LookupRequest::range(Timestamp(12), Timestamp(12)));
        assert_eq!(out.miss_kind(), Some(MissKind::Capacity));
    }

    #[test]
    fn consistency_miss_classification() {
        let n = node();
        // A version valid only in [30, 40).
        n.insert(
            key(1),
            Bytes::from_static(b"v"),
            ValidityInterval::bounded(Timestamp(30), Timestamp(40)).unwrap(),
            TagSet::new(),
            WallClock::ZERO,
        );
        // The transaction's staleness limit allows anything from ts 20, but
        // its pin set has already narrowed to [22, 25]: a fresh-enough version
        // exists (30..40 ≥ 20) yet none intersects the pin set.
        let req = LookupRequest {
            pinset_lo: Timestamp(22),
            pinset_hi: Timestamp(25),
            freshness_lo: Timestamp(20),
        };
        let out = n.lookup(&key(1), &req);
        assert_eq!(out.miss_kind(), Some(MissKind::Consistency));

        // If even the staleness limit cannot reach any version, it is a
        // staleness miss instead.
        let req = LookupRequest {
            pinset_lo: Timestamp(45),
            pinset_hi: Timestamp(50),
            freshness_lo: Timestamp(45),
        };
        assert_eq!(
            n.lookup(&key(1), &req).miss_kind(),
            Some(MissKind::Staleness)
        );
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let n = node();
        insert_simple(&n, 1, 5);
        n.lookup(&key(1), &LookupRequest::at(Timestamp(5)));
        n.reset_stats();
        assert_eq!(n.stats().lookups(), 0);
        assert!(n.lookup(&key(1), &LookupRequest::at(Timestamp(5))).is_hit());
    }

    #[test]
    fn history_cap_advances_the_floor_and_rejects_unverifiable_inserts() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 10_000,
                shards: 1,
                history_limit: 4,
                ..NodeConfig::default()
            },
        );
        // Six invalidations; the cap keeps the newest four, so the floor is
        // the newest dropped timestamp (20).
        for ts in [10u64, 20, 30, 40, 50, 60] {
            n.apply_invalidation(Timestamp(ts), &tags_for("items", 1));
        }
        assert_eq!(n.invalidation_history_len(), 4);
        assert_eq!(n.history_floor(), Timestamp(20));

        // A still-valid insert from below the floor cannot be race-checked:
        // a matching invalidation in the pruned region may exist. Rejected.
        n.insert(
            key(2),
            Bytes::from_static(b"ancient"),
            ValidityInterval::unbounded(Timestamp(15)),
            tags_for("items", 2),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().history_floor_drops, 1);
        assert_eq!(n.entry_count(), 0);
        assert!(!n
            .lookup(&key(2), &LookupRequest::range(Timestamp(55), Timestamp(55)))
            .is_hit());

        // Tag-free entries can never be invalidated, so the floor does not
        // apply to them.
        n.insert(
            key(3),
            Bytes::from_static(b"untagged"),
            ValidityInterval::unbounded(Timestamp(5)),
            TagSet::new(),
            WallClock::ZERO,
        );
        assert_eq!(n.entry_count(), 1);
        n.validate_invariants().unwrap();
    }

    #[test]
    fn evict_stale_prunes_history_and_the_race_stays_closed_at_the_boundary() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 10_000,
                shards: 1,
                ..NodeConfig::default()
            },
        );
        n.apply_invalidation(Timestamp(10), &tags_for("items", 1));
        n.apply_invalidation(Timestamp(30), &tags_for("items", 1));
        n.note_timestamp(Timestamp(100));
        assert_eq!(n.invalidation_history_len(), 2);

        // Maintenance prunes the event at 10; the floor records it.
        n.evict_stale(Timestamp(20));
        assert_eq!(n.invalidation_history_len(), 1);
        assert_eq!(n.history_floor(), Timestamp(10));

        // An insert starting exactly AT the floor is still fully checkable
        // (a dropped event at ts <= 10 could never truncate it), and the
        // retained event at 30 must truncate it: the §4.2 race is closed at
        // the boundary.
        n.insert(
            key(1),
            Bytes::from_static(b"boundary"),
            ValidityInterval::unbounded(Timestamp(10)),
            tags_for("items", 1),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().late_insert_truncations, 1);
        assert!(n
            .lookup(&key(1), &LookupRequest::range(Timestamp(25), Timestamp(25)))
            .is_hit());
        assert!(!n
            .lookup(
                &key(1),
                &LookupRequest::range(Timestamp(30), Timestamp(100))
            )
            .is_hit());

        // An insert from below the floor is rejected outright.
        n.insert(
            key(2),
            Bytes::from_static(b"below-floor"),
            ValidityInterval::unbounded(Timestamp(5)),
            tags_for("items", 2),
            WallClock::ZERO,
        );
        assert_eq!(n.stats().history_floor_drops, 1);
        n.validate_invariants().unwrap();
    }

    #[test]
    fn shard_stats_expose_lock_and_eviction_activity() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 10_000,
                shards: 4,
                ..NodeConfig::default()
            },
        );
        for i in 0..32 {
            insert_simple(&n, i, 1);
        }
        n.apply_invalidation(Timestamp(50), &TagSet::new());
        for i in 0..32 {
            assert!(n
                .lookup(&key(i), &LookupRequest::at(Timestamp(10)))
                .is_hit());
        }
        let stats = n.shard_stats();
        assert_eq!(stats.len(), 4);
        let reads: u64 = stats.iter().map(|s| s.read_locks).sum();
        let writes: u64 = stats.iter().map(|s| s.write_locks).sum();
        assert_eq!(reads, 32, "one shared acquisition per lookup");
        assert_eq!(writes, 32, "one exclusive acquisition per insert");
        let entries: u64 = stats.iter().map(|s| s.entries).sum();
        assert_eq!(entries as usize, n.entry_count());
        let bytes: u64 = stats.iter().map(|s| s.used_bytes).sum();
        assert_eq!(bytes as usize, n.used_bytes());
        assert!(stats.iter().all(|s| s.contention_rate() <= 1.0));
        // Reset clears the lock counters too.
        n.reset_stats();
        assert!(n.shard_stats().iter().all(|s| s.acquisitions() == 0));
    }

    #[test]
    fn concurrent_lookups_inserts_and_invalidations_keep_invariants() {
        let n = CacheNode::new(
            "n0",
            NodeConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
                ..NodeConfig::default()
            },
        );
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let n = &n;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = t * 1_000 + i;
                        n.insert(
                            key(k),
                            Bytes::from(vec![t as u8; 32]),
                            ValidityInterval::unbounded(Timestamp(1)),
                            tags_for("items", k),
                            WallClock::ZERO,
                        );
                        n.lookup(&key(k), &LookupRequest::at(Timestamp(1)));
                    }
                });
            }
            let n = &n;
            scope.spawn(move || {
                for ts in 0..50u64 {
                    n.apply_invalidation(Timestamp(2 + ts), &tags_for("items", ts * 40));
                }
            });
        });
        assert_eq!(n.stats().insertions, 800);
        assert_eq!(n.stats().invalidation_messages, 50);
        n.validate_invariants().unwrap();
    }
}
