//! The invalidation stream (§4.2, §5.3).
//!
//! When a read/write transaction commits, the database publishes one message
//! containing the transaction's commit timestamp and the set of invalidation
//! tags it affected. Messages are delivered to every cache node in commit
//! order; cache nodes use the timestamps to truncate the validity intervals
//! of affected entries, and — because cache entries and invalidations share
//! the same timestamp domain — there are no races between an item being
//! inserted with an old value and the invalidation that supersedes it.

use crossbeam::channel::{unbounded, Receiver, Sender};
use serde::{Deserialize, Serialize};
use txtypes::{TagSet, Timestamp, WallClock};

/// One entry in the invalidation stream: everything a single update
/// transaction invalidated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvalidationMessage {
    /// The commit timestamp of the update transaction.
    pub timestamp: Timestamp,
    /// The invalidation tags affected by the transaction.
    pub tags: TagSet,
    /// The wall-clock time of the commit (for staleness bookkeeping).
    pub committed_at: WallClock,
}

/// Fan-out distribution of invalidation messages to subscribers, standing in
/// for the paper's reliable application-level multicast.
///
/// Messages are also kept in an ordered log so late subscribers (or tests)
/// can replay history.
#[derive(Debug, Default)]
pub struct InvalidationBus {
    subscribers: Vec<Sender<InvalidationMessage>>,
    log: Vec<InvalidationMessage>,
    /// Timestamp of the most recently published message. The commit
    /// sequencer publishes while holding the timestamp-allocation lock, so
    /// this must only ever increase; [`publish`](Self::publish) counts any
    /// violation so a broken commit path is observable in tests.
    last_timestamp: Option<Timestamp>,
    out_of_order: u64,
}

impl InvalidationBus {
    /// Creates a bus with no subscribers.
    #[must_use]
    pub fn new() -> InvalidationBus {
        InvalidationBus::default()
    }

    /// Registers a new subscriber and returns its receiving end. Only
    /// messages published after subscription are delivered; use
    /// [`log`](Self::log) to catch up on history.
    pub fn subscribe(&mut self) -> Receiver<InvalidationMessage> {
        let (tx, rx) = unbounded();
        self.subscribers.push(tx);
        rx
    }

    /// Publishes a message to all subscribers, in order, and appends it to
    /// the log. Disconnected subscribers are dropped.
    pub fn publish(&mut self, message: InvalidationMessage) {
        if self
            .last_timestamp
            .is_some_and(|last| message.timestamp <= last)
        {
            self.out_of_order += 1;
        } else {
            self.last_timestamp = Some(message.timestamp);
        }
        self.subscribers.retain(|s| s.send(message.clone()).is_ok());
        self.log.push(message);
    }

    /// The ordered history of published messages.
    #[must_use]
    pub fn log(&self) -> &[InvalidationMessage] {
        &self.log
    }

    /// Reinstates the invalidation history after crash recovery. The log
    /// must be in commit order; the horizon (`last_timestamp`) is set to the
    /// newest restored message so caches reconnecting after the crash seal
    /// at the recovered horizon. Replaces any existing history — only valid
    /// on a bus with no subscribers (recovery runs before anything
    /// reconnects).
    pub fn restore(&mut self, log: Vec<InvalidationMessage>) {
        debug_assert!(self.subscribers.is_empty(), "restore before subscribers");
        self.last_timestamp = log.last().map(|m| m.timestamp);
        self.log = log;
        self.out_of_order = 0;
    }

    /// Timestamp of the most recently published message, if any.
    #[must_use]
    pub fn last_timestamp(&self) -> Option<Timestamp> {
        self.last_timestamp
    }

    /// Number of messages published with a timestamp at or below an earlier
    /// message's — always zero while the commit sequencer is correct.
    #[must_use]
    pub fn out_of_order_publishes(&self) -> u64 {
        self.out_of_order
    }

    /// Number of live subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use txtypes::InvalidationTag;

    fn msg(ts: u64) -> InvalidationMessage {
        InvalidationMessage {
            timestamp: Timestamp(ts),
            tags: [InvalidationTag::keyed("items", format!("id={ts}"))]
                .into_iter()
                .collect(),
            committed_at: WallClock::from_secs(ts),
        }
    }

    #[test]
    fn subscribers_receive_in_order() {
        let mut bus = InvalidationBus::new();
        let rx = bus.subscribe();
        bus.publish(msg(1));
        bus.publish(msg(2));
        assert_eq!(rx.recv().unwrap().timestamp, Timestamp(1));
        assert_eq!(rx.recv().unwrap().timestamp, Timestamp(2));
        assert_eq!(bus.log().len(), 2);
    }

    #[test]
    fn late_subscribers_miss_earlier_messages_but_log_has_them() {
        let mut bus = InvalidationBus::new();
        bus.publish(msg(1));
        let rx = bus.subscribe();
        bus.publish(msg(2));
        assert_eq!(rx.try_iter().count(), 1);
        assert_eq!(bus.log().len(), 2);
    }

    #[test]
    fn publish_order_is_tracked() {
        let mut bus = InvalidationBus::new();
        assert_eq!(bus.last_timestamp(), None);
        bus.publish(msg(1));
        bus.publish(msg(3));
        assert_eq!(bus.last_timestamp(), Some(Timestamp(3)));
        assert_eq!(bus.out_of_order_publishes(), 0);
        bus.publish(msg(2));
        assert_eq!(bus.out_of_order_publishes(), 1);
        assert_eq!(bus.last_timestamp(), Some(Timestamp(3)));
    }

    #[test]
    fn disconnected_subscribers_are_pruned() {
        let mut bus = InvalidationBus::new();
        let rx = bus.subscribe();
        assert_eq!(bus.subscriber_count(), 1);
        drop(rx);
        bus.publish(msg(1));
        assert_eq!(bus.subscriber_count(), 0);
    }
}
