//! Dual-granularity invalidation tags (§4.2, §5.3).
//!
//! Every still-valid cache entry carries a set of invalidation tags describing
//! which parts of the database it depends on. A tag has two parts: a table
//! name and an optional index-key description. Queries that perform an index
//! equality lookup receive a keyed tag (`USERS:NAME=ALICE`); queries that scan
//! a table (sequentially or by index range) receive a wildcard tag
//! (`USERS:?`). At update time the database emits the tags of the tuples it
//! touched, and a keyed tag matches either the identical keyed tag or the
//! table's wildcard.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single invalidation tag: a table plus an optional key description.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InvalidationTag {
    /// The table the dependency is on.
    pub table: String,
    /// `Some(column=value)` for an index-equality dependency, `None` for a
    /// wildcard (whole-table) dependency.
    pub key: Option<String>,
}

impl InvalidationTag {
    /// Creates a keyed tag, e.g. `users:name=alice`.
    #[must_use]
    pub fn keyed(table: impl Into<String>, key: impl Into<String>) -> InvalidationTag {
        InvalidationTag {
            table: table.into(),
            key: Some(key.into()),
        }
    }

    /// Creates a wildcard tag covering the whole table, e.g. `users:?`.
    #[must_use]
    pub fn wildcard(table: impl Into<String>) -> InvalidationTag {
        InvalidationTag {
            table: table.into(),
            key: None,
        }
    }

    /// Returns `true` if this is a wildcard (whole-table) tag.
    #[must_use]
    pub fn is_wildcard(&self) -> bool {
        self.key.is_none()
    }

    /// Returns `true` if an update carrying tag `update` invalidates a cached
    /// object that depends on `self`.
    ///
    /// Matching is symmetric in granularity: a wildcard on either side matches
    /// any tag on the same table; two keyed tags match only if the keys are
    /// equal.
    #[must_use]
    pub fn matches(&self, update: &InvalidationTag) -> bool {
        if self.table != update.table {
            return false;
        }
        match (&self.key, &update.key) {
            (None, _) | (_, None) => true,
            (Some(a), Some(b)) => a == b,
        }
    }
}

impl fmt::Display for InvalidationTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.key {
            Some(k) => write!(f, "{}:{}", self.table, k),
            None => write!(f, "{}:?", self.table),
        }
    }
}

/// A set of invalidation tags.
///
/// Tag sets are small (one or a few tags per query, a handful per cached
/// object), so a sorted `Vec` with deduplication is both compact and cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSet {
    tags: Vec<InvalidationTag>,
}

impl TagSet {
    /// Creates an empty tag set.
    #[must_use]
    pub fn new() -> TagSet {
        TagSet::default()
    }

    /// Returns `true` if the set holds no tags.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Returns the number of tags in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Returns the tags in sorted order.
    #[must_use]
    pub fn tags(&self) -> &[InvalidationTag] {
        &self.tags
    }

    /// Inserts a tag, keeping the set deduplicated.
    ///
    /// Inserting a wildcard tag for a table subsumes (removes) any keyed tags
    /// already present for that table; inserting a keyed tag when the table's
    /// wildcard is already present is a no-op. This mirrors the database-side
    /// aggregation of "a transaction that modifies most of a table" (§5.3).
    pub fn insert(&mut self, tag: InvalidationTag) {
        if tag.is_wildcard() {
            self.tags.retain(|t| t.table != tag.table);
        } else if self
            .tags
            .iter()
            .any(|t| t.table == tag.table && t.is_wildcard())
        {
            return;
        }
        if let Err(pos) = self.tags.binary_search(&tag) {
            self.tags.insert(pos, tag);
        }
    }

    /// Merges another tag set into this one.
    pub fn merge(&mut self, other: &TagSet) {
        for tag in &other.tags {
            self.insert(tag.clone());
        }
    }

    /// Returns `true` if any tag in this (dependency) set is matched by any
    /// tag in the `update` set.
    #[must_use]
    pub fn intersects(&self, update: &TagSet) -> bool {
        self.tags
            .iter()
            .any(|dep| update.tags.iter().any(|upd| dep.matches(upd)))
    }

    /// Iterates over the tags.
    pub fn iter(&self) -> impl Iterator<Item = &InvalidationTag> {
        self.tags.iter()
    }
}

impl FromIterator<InvalidationTag> for TagSet {
    fn from_iter<T: IntoIterator<Item = InvalidationTag>>(iter: T) -> Self {
        let mut s = TagSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl fmt::Display for TagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tags.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_and_wildcard_display() {
        assert_eq!(
            InvalidationTag::keyed("users", "name=alice").to_string(),
            "users:name=alice"
        );
        assert_eq!(InvalidationTag::wildcard("users").to_string(), "users:?");
    }

    #[test]
    fn matching_rules() {
        let keyed = InvalidationTag::keyed("users", "id=1");
        let other_key = InvalidationTag::keyed("users", "id=2");
        let wild = InvalidationTag::wildcard("users");
        let other_table = InvalidationTag::keyed("items", "id=1");

        assert!(keyed.matches(&keyed));
        assert!(!keyed.matches(&other_key));
        assert!(
            keyed.matches(&wild),
            "wildcard update hits keyed dependency"
        );
        assert!(
            wild.matches(&keyed),
            "wildcard dependency hit by keyed update"
        );
        assert!(wild.matches(&wild));
        assert!(!keyed.matches(&other_table));
    }

    #[test]
    fn tagset_insert_dedups() {
        let mut s = TagSet::new();
        s.insert(InvalidationTag::keyed("users", "id=1"));
        s.insert(InvalidationTag::keyed("users", "id=1"));
        s.insert(InvalidationTag::keyed("users", "id=2"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tagset_wildcard_subsumes_keyed() {
        let mut s = TagSet::new();
        s.insert(InvalidationTag::keyed("users", "id=1"));
        s.insert(InvalidationTag::keyed("users", "id=2"));
        s.insert(InvalidationTag::keyed("items", "id=9"));
        s.insert(InvalidationTag::wildcard("users"));
        assert_eq!(s.len(), 2);
        assert!(s.tags().contains(&InvalidationTag::wildcard("users")));
        // Keyed tag after wildcard is a no-op.
        s.insert(InvalidationTag::keyed("users", "id=3"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn tagset_intersects() {
        let deps: TagSet = [
            InvalidationTag::keyed("users", "id=1"),
            InvalidationTag::keyed("items", "id=7"),
        ]
        .into_iter()
        .collect();
        let update_hit: TagSet = [InvalidationTag::keyed("items", "id=7")]
            .into_iter()
            .collect();
        let update_miss: TagSet = [InvalidationTag::keyed("items", "id=8")]
            .into_iter()
            .collect();
        let update_wild: TagSet = [InvalidationTag::wildcard("users")].into_iter().collect();
        assert!(deps.intersects(&update_hit));
        assert!(!deps.intersects(&update_miss));
        assert!(deps.intersects(&update_wild));
        assert!(!deps.intersects(&TagSet::new()));
    }

    #[test]
    fn tagset_merge_and_iter() {
        let mut a: TagSet = [InvalidationTag::keyed("users", "id=1")]
            .into_iter()
            .collect();
        let b: TagSet = [
            InvalidationTag::keyed("users", "id=2"),
            InvalidationTag::wildcard("bids"),
        ]
        .into_iter()
        .collect();
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().count(), 3);
    }
}
