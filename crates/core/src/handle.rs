//! The `TxCache` handle: the entry point applications hold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cache_server::CacheCluster;
use crossbeam::channel::Receiver;
use mvdb::{Database, InvalidationMessage, SnapshotId};
use parking_lot::Mutex;
use pincushion::Pincushion;
use txtypes::{Result, SimClock, Staleness, Timestamp};

use crate::backend::CacheBackend;
use crate::config::{CacheMode, TimestampPolicy, TxCacheConfig};
use crate::stats::{AtomicClientStats, ClientStats};
use crate::transaction::Transaction;

/// The TxCache client library.
///
/// One `TxCache` is shared by all requests of an application server. It knows
/// how to reach the database, the cache tier (in-process or over the wire —
/// see [`CacheBackend`]) and the pincushion, forwards the database's
/// invalidation stream to the cache nodes, and hands out [`Transaction`]
/// objects.
pub struct TxCache {
    pub(crate) db: Arc<Database>,
    pub(crate) cache: Arc<dyn CacheBackend>,
    pub(crate) pincushion: Arc<Pincushion>,
    pub(crate) clock: SimClock,
    pub(crate) config: TxCacheConfig,
    pub(crate) stats: AtomicClientStats,
    invalidations: Mutex<Receiver<InvalidationMessage>>,
    /// The newest heartbeat timestamp already pushed to the backend; pumps
    /// with nothing new to deliver are skipped, which matters once every
    /// heartbeat is a network frame to every node.
    last_heartbeat: AtomicU64,
}

impl TxCache {
    /// Creates a library instance wired to an in-process cache cluster (the
    /// historical constructor; see [`TxCache::with_backend`] for the general
    /// form).
    #[must_use]
    pub fn new(
        db: Arc<Database>,
        cache: Arc<CacheCluster>,
        pincushion: Arc<Pincushion>,
        clock: SimClock,
        config: TxCacheConfig,
    ) -> TxCache {
        TxCache::with_backend(db, cache, pincushion, clock, config)
    }

    /// Creates a library instance wired to any [`CacheBackend`] — the
    /// in-process cluster or a [`RemoteCluster`](crate::backend::RemoteCluster)
    /// of `txcached` TCP servers. `config.backend` is overwritten with the
    /// actual backend's kind so reports can't lie about the deployment.
    #[must_use]
    pub fn with_backend(
        db: Arc<Database>,
        cache: Arc<dyn CacheBackend>,
        pincushion: Arc<Pincushion>,
        clock: SimClock,
        mut config: TxCacheConfig,
    ) -> TxCache {
        let invalidations = db.subscribe_invalidations();
        config.backend = cache.kind();
        TxCache {
            db,
            cache,
            pincushion,
            clock,
            config,
            stats: AtomicClientStats::default(),
            invalidations: Mutex::new(invalidations),
            last_heartbeat: AtomicU64::new(0),
        }
    }

    /// The library's configuration.
    #[must_use]
    pub fn config(&self) -> &TxCacheConfig {
        &self.config
    }

    /// The underlying database (for administrative tasks such as schema
    /// creation and bulk loading).
    #[must_use]
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The active cache backend (for statistics).
    #[must_use]
    pub fn cache(&self) -> &Arc<dyn CacheBackend> {
        &self.cache
    }

    /// The pincushion (for statistics).
    #[must_use]
    pub fn pincushion(&self) -> &Arc<Pincushion> {
        &self.pincushion
    }

    /// The shared simulated clock.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Library-side statistics. Counters kept inside the backend — put
    /// stalls, replica fallbacks, wrong-epoch redirects (the remote backend
    /// counts its own) — are merged in.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        let mut snapshot = self.stats.snapshot();
        snapshot.put_pipeline_stalls += self.cache.put_stalls();
        snapshot.replica_fallbacks += self.cache.replica_fallbacks();
        snapshot.wrong_epoch_redirects += self.cache.wrong_epoch_redirects();
        snapshot
    }

    /// Begins a read-only transaction with the given staleness limit
    /// (`BEGIN-RO` in Figure 2).
    pub fn begin_ro(&self, staleness: Staleness) -> Result<Transaction<'_>> {
        self.pump_invalidations();
        self.stats.ro_transactions.bump();
        Transaction::new_read_only(self, staleness)
    }

    /// Begins a read-only transaction with the configured default staleness.
    pub fn begin_ro_default(&self) -> Result<Transaction<'_>> {
        self.begin_ro(self.config.default_staleness)
    }

    /// Begins a read/write transaction (`BEGIN-RW` in Figure 2). Read/write
    /// transactions bypass the cache entirely and run directly on the
    /// database (§2.2).
    pub fn begin_rw(&self) -> Result<Transaction<'_>> {
        self.pump_invalidations();
        self.stats.rw_transactions.bump();
        Transaction::new_read_write(self)
    }

    /// Forwards any pending invalidation-stream messages from the database to
    /// whichever [`CacheBackend`] is active, as one commit-ordered batch,
    /// followed by a timestamp heartbeat. In the paper this is an
    /// asynchronous multicast; here the harness driver loop (and every
    /// transaction begin) pumps it, which keeps experiments deterministic
    /// while preserving the ordering guarantees the protocol relies on.
    ///
    /// The heartbeat is the database's commit timestamp as of *before* the
    /// drain: commits publish their invalidation before the timestamp becomes
    /// visible, so at that point every invalidation at or below the noted
    /// timestamp has been applied, and still-valid entries may be served at
    /// the current time even when recent commits (or the initial bulk load)
    /// did not touch their tags.
    ///
    /// A pump with no new messages and no heartbeat progress is a no-op, so
    /// calling this from a hot driver loop costs nothing — in particular it
    /// does not send empty frames to remote nodes.
    pub fn pump_invalidations(&self) {
        let latest = self.db.latest_timestamp();
        // Hold the receiver lock across the backend call: batches from
        // concurrent pumps must reach the cache nodes in commit order.
        let rx = self.invalidations.lock();
        let batch: Vec<InvalidationMessage> = rx.try_iter().collect();
        if batch.is_empty() && self.last_heartbeat.load(Ordering::Acquire) >= latest.as_u64() {
            return;
        }
        self.cache.apply_invalidations(&batch, latest);
        self.last_heartbeat
            .fetch_max(latest.as_u64(), Ordering::AcqRel);
        drop(rx);
    }

    /// Alias of [`TxCache::pump_invalidations`], kept for callers written
    /// against the pre-networked API.
    pub fn deliver_invalidations(&self) {
        self.pump_invalidations();
    }

    /// Periodic maintenance: forwards invalidations, reaps old unused pinned
    /// snapshots (issuing `UNPIN` to the database), and evicts cache entries
    /// too stale for any current transaction to use.
    pub fn maintenance(&self) {
        self.pump_invalidations();
        for ts in self.pincushion.reap() {
            // The snapshot may already be gone if the database restarted; a
            // failed unpin is not an error for maintenance.
            let _ = self.db.unpin(SnapshotId(ts));
        }
        // Entries that ended before the oldest snapshot still tracked by the
        // pincushion can never satisfy any transaction again.
        let horizon: Timestamp = self
            .pincushion
            .oldest()
            .map_or_else(|| self.db.latest_timestamp(), |p| p.timestamp);
        self.cache.evict_stale(horizon);
    }

    pub(crate) fn mode(&self) -> CacheMode {
        self.config.mode
    }

    pub(crate) fn policy(&self) -> TimestampPolicy {
        self.config.policy
    }
}

impl std::fmt::Debug for TxCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxCache")
            .field("mode", &self.config.mode)
            .field("backend", &self.config.backend)
            .field("policy", &self.config.policy)
            .field("stats", &self.stats())
            .finish()
    }
}
