//! Quickstart: wire up TxCache, cache a function, watch it get invalidated.
//!
//! Run with `cargo run --example quickstart`.

use std::sync::Arc;

use txcache_repro::cache_server::CacheCluster;
use txcache_repro::mvdb::{
    ColumnType, Database, DbConfig, Predicate, SelectQuery, TableSchema, Value,
};
use txcache_repro::pincushion::Pincushion;
use txcache_repro::txcache::{TxCache, TxCacheConfig};
use txcache_repro::txtypes::{Result, SimClock, Staleness};

fn main() -> Result<()> {
    // 1. Set up the components: database, cache cluster, pincushion, library.
    let clock = SimClock::new();
    let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
    db.create_table(
        TableSchema::new("greetings")
            .column("id", ColumnType::Int)
            .column("text", ColumnType::Text)
            .unique_index("id"),
    )?;
    db.bulk_load(
        "greetings",
        vec![vec![Value::Int(1), Value::text("hello, world")]],
    )?;

    let cache = Arc::new(CacheCluster::new(2, 16 << 20));
    let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
    let txcache = Arc::new(TxCache::new(
        db.clone(),
        cache.clone(),
        pincushion,
        clock.clone(),
        TxCacheConfig::default(),
    ));

    // 2. A cacheable function: fetch a greeting by id.
    let fetch = |tx: &mut txcache_repro::txcache::Transaction<'_>, id: i64| -> Result<String> {
        tx.cached("greeting", &id, |tx| {
            let q = SelectQuery::table("greetings").filter(Predicate::eq("id", id));
            let r = tx.query(&q)?;
            Ok(r.get(0, "text")?.as_text().unwrap_or_default().to_string())
        })
    };

    // 3. First read-only transaction: a cache miss, computed from the database.
    let mut tx = txcache.begin_ro(Staleness::seconds(30))?;
    println!("first call  : {}", fetch(&mut tx, 1)?);
    tx.commit()?;

    // 4. Second transaction: served from the cache.
    let mut tx = txcache.begin_ro(Staleness::seconds(30))?;
    println!("second call : {} (from cache)", fetch(&mut tx, 1)?);
    tx.commit()?;

    // 5. A read/write transaction updates the row. TxCache automatically
    //    invalidates the cached result — no application invalidation code.
    let mut rw = txcache.begin_rw()?;
    rw.update(
        "greetings",
        &Predicate::eq("id", 1i64),
        &[("text".to_string(), Value::text("hello, TxCache"))],
    )?;
    rw.commit()?;

    // 6. A fresh transaction (tight staleness bound) sees the new value.
    clock.advance_secs(31); // age the old snapshot past the staleness limit
    let mut tx = txcache.begin_ro(Staleness::seconds(1))?;
    println!("after update: {}", fetch(&mut tx, 1)?);
    tx.commit()?;

    let stats = txcache.stats();
    println!(
        "cacheable calls: {}, hits: {}, misses: {}",
        stats.cacheable_calls, stats.cache_hits, stats.cache_misses
    );
    Ok(())
}
