//! Offline subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply cloneable, thread-safe byte
//! container. Static slices are stored without allocation; owned buffers are
//! reference-counted so cache entries can be shared across threads, and
//! [`Bytes::slice`] carves out subranges that share the same allocation —
//! the wire protocol's zero-copy decode path hands out slices of a received
//! frame instead of copying each value into its own `Vec`.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, cheaply cloneable slice of bytes.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared {
        buf: Arc<Vec<u8>>,
        offset: usize,
        len: usize,
    },
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without allocating.
    #[must_use]
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Returns the number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Returns true if the container is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Returns the contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared { buf, offset, len } => &buf[*offset..*offset + *len],
        }
    }

    /// Copies the contents into a new `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a `Bytes` over `range` of this one, sharing the backing
    /// allocation — no bytes are copied. Mirrors `bytes::Bytes::slice`.
    ///
    /// # Panics
    /// If the range is out of bounds or decreasing, like slice indexing.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice range {start}..{end} out of bounds for {} bytes",
            self.len()
        );
        match &self.0 {
            Repr::Static(s) => Bytes(Repr::Static(&s[start..end])),
            Repr::Shared { buf, offset, .. } => Bytes(Repr::Shared {
                buf: Arc::clone(buf),
                offset: offset + start,
                len: end - start,
            }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes(Repr::Shared {
            buf: Arc::new(v),
            offset: 0,
            len,
        })
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl serde::Serialize for Bytes {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self.as_slice())
    }
}

impl<'de> serde::Deserialize<'de> for Bytes {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BytesVisitor;
        impl<'de> serde::de::Visitor<'de> for BytesVisitor {
            type Value = Bytes;
            fn expecting(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("a byte buffer")
            }
            fn visit_bytes<E: serde::de::Error>(self, v: &[u8]) -> Result<Bytes, E> {
                Ok(Bytes::from(v.to_vec()))
            }
            fn visit_byte_buf<E: serde::de::Error>(self, v: Vec<u8>) -> Result<Bytes, E> {
                Ok(Bytes::from(v))
            }
        }
        deserializer.deserialize_byte_buf(BytesVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_owned_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert_eq!(Bytes::new().len(), 0);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_supports_slicing() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn clone_is_cheap_and_shares() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn slices_share_the_backing_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // A slice of a slice composes offsets.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        // Static slices stay static.
        let s = Bytes::from_static(b"abcdef").slice(..3);
        assert_eq!(&s[..], b"abc");
        // Degenerate ranges are fine.
        assert!(b.slice(4..4).is_empty());
        assert_eq!(b.slice(..), b);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slices_panic() {
        let _ = Bytes::from(vec![1, 2, 3]).slice(1..9);
    }
}
