//! Observability smoke tests: the `Metrics` wire opcode answered by a live
//! `txcached` with real per-opcode latency distributions, counter
//! monotonicity across scrapes, and the slow-op flight recorder capturing
//! an artificially delayed request with its span trail.
//!
//! With `TXCACHED_ADDRS` set (comma-separated), the scrape test runs
//! against those externally started servers — this is what
//! `ci.sh --obs-smoke` drives; otherwise loopback servers are spawned
//! in-process.

use bytes::Bytes;
use txcache_repro::cache_server::{snapshot_from_wire, NodeConfig, TxcachedServer};
use txcache_repro::txtypes::{CacheKey, TagSet, Timestamp, ValidityInterval, WallClock};
use txcache_repro::wire::{FramedStream, Request, Response};

fn external_addrs() -> Option<Vec<String>> {
    match std::env::var("TXCACHED_ADDRS") {
        Ok(list) if !list.trim().is_empty() => {
            Some(list.split(',').map(|s| s.trim().to_string()).collect())
        }
        _ => None,
    }
}

fn connect(addr: &str) -> FramedStream<std::net::TcpStream> {
    let stream = std::net::TcpStream::connect(addr).expect("connect txcached");
    stream.set_nodelay(true).expect("set nodelay");
    FramedStream::new(stream)
}

/// Scrapes one node's metrics over the wire and rebuilds the local snapshot.
fn scrape(conn: &mut FramedStream<std::net::TcpStream>) -> txcache_repro::obs::MetricsSnapshot {
    match conn
        .call(&Request::Metrics)
        .expect("metrics call")
        .into_result()
        .expect("metrics result")
    {
        Response::MetricsSnapshot(report) => snapshot_from_wire(&report),
        other => panic!("expected a MetricsSnapshot, got {other:?}"),
    }
}

/// Drives a put + warm-get burst over one connection. The heartbeat goes
/// first: it advances the node's invalidation horizon so the still-valid
/// entries are servable at the lookup timestamp.
fn drive_traffic(conn: &mut FramedStream<std::net::TcpStream>, rounds: usize) {
    conn.call(&Request::InvalidationBatch {
        events: Vec::new(),
        heartbeat: Timestamp(1_000_000),
    })
    .expect("heartbeat");
    for i in 0..rounds {
        let key = CacheKey::new("obs_smoke", format!("[{i}]"));
        conn.call(&Request::Put {
            key: key.clone(),
            value: Bytes::from(vec![0x42u8; 64]),
            validity: ValidityInterval::unbounded(Timestamp(1)),
            tags: TagSet::new(),
            now: WallClock::ZERO,
        })
        .expect("put");
        let got = conn
            .call(&Request::VersionedGet {
                key,
                pinset_lo: Timestamp(500),
                pinset_hi: Timestamp(500),
                freshness_lo: Timestamp(500),
            })
            .expect("get");
        assert!(matches!(got, Response::Hit { .. }), "fresh put must hit");
    }
}

/// A live node must answer the `Metrics` opcode with nonzero per-opcode
/// latency percentiles, and every counter must be monotone across scrapes.
#[test]
fn metrics_scrape_reports_latencies_and_monotone_counters() {
    let (server, addr) = match external_addrs() {
        Some(addrs) => (None, addrs[0].clone()),
        None => {
            let server = TxcachedServer::bind(
                "127.0.0.1:0",
                "obs-smoke",
                NodeConfig {
                    capacity_bytes: 4 << 20,
                    ..NodeConfig::default()
                },
            )
            .expect("bind loopback txcached");
            let addr = server.local_addr().to_string();
            (Some(server), addr)
        }
    };

    let mut conn = connect(&addr);
    drive_traffic(&mut conn, 50);
    let first = scrape(&mut conn);

    // Per-opcode latency histograms with real distributions behind them.
    for op in ["get", "put"] {
        let hist = first
            .histogram(&format!("server.req.{op}.us"))
            .unwrap_or_else(|| panic!("server.req.{op}.us must be exported"));
        assert!(hist.count >= 50, "{op}: at least the driven ops recorded");
        assert!(hist.percentile(0.5) > 0, "{op}: p50 must be nonzero");
        assert!(hist.percentile(0.99) > 0, "{op}: p99 must be nonzero");
        assert!(
            hist.percentile(0.5) <= hist.percentile(0.99),
            "{op}: percentiles must be ordered"
        );
    }
    // The key protocol series exist and saw the traffic.
    for series in ["server.req.total", "server.bytes.in", "server.bytes.out"] {
        assert!(
            first.counter(series).unwrap_or(0) > 0,
            "{series} must be nonzero after traffic"
        );
    }

    // Monotonicity: more traffic, then a second scrape — every counter and
    // histogram count is non-decreasing, and the driven ones grew.
    drive_traffic(&mut conn, 25);
    let second = scrape(&mut conn);
    for (name, value) in &first.counters {
        let later = second.counter(name).unwrap_or(0);
        assert!(later >= *value, "{name} went backwards: {value} -> {later}");
    }
    for (name, hist) in &first.histograms {
        let later = second.histogram(name).map_or(0, |h| h.count);
        assert!(
            later >= hist.count,
            "{name} count went backwards: {} -> {later}",
            hist.count
        );
    }
    assert!(
        second.counter("server.req.total") > first.counter("server.req.total"),
        "the second burst must be visible in req.total"
    );
    assert!(
        second.histogram("server.req.get.us").map_or(0, |h| h.count)
            > first.histogram("server.req.get.us").map_or(0, |h| h.count),
        "the second burst must be visible in the get histogram"
    );
    drop(server);
}

/// An artificially delayed request must land in the slow-op flight
/// recorder with its span trail intact — the on-demand dump the chaos
/// harness prints when a checker fails.
#[test]
fn slow_op_ring_captures_a_delayed_request_with_spans() {
    let server = TxcachedServer::bind(
        "127.0.0.1:0",
        "obs-slow",
        NodeConfig {
            capacity_bytes: 4 << 20,
            // Every request is held for 2 ms before dispatch, well past the
            // 1 ms capture threshold.
            inject_delay_us: 2_000,
            slow_op_threshold_us: 1_000,
            ..NodeConfig::default()
        },
    )
    .expect("bind loopback txcached");
    let mut conn = connect(&server.local_addr().to_string());
    let pong = conn
        .call(&Request::Ping { nonce: 7 })
        .expect("ping")
        .into_result()
        .expect("pong");
    assert_eq!(pong, Response::Pong { nonce: 7 });

    let captured = server.slow_ops();
    assert!(
        !captured.is_empty(),
        "a 2 ms request must cross the 1 ms slow-op threshold"
    );
    let op = captured.last().expect("captured slow op");
    assert!(op.total_us >= 1_000, "captured total reflects the delay");
    let rendered = op.render();
    assert!(
        rendered.contains("ping"),
        "the opcode must be in the dump: {rendered}"
    );
    assert!(
        rendered.contains("injected_delay") && rendered.contains("applied"),
        "the span trail must survive into the dump: {rendered}"
    );
    assert!(
        server
            .metrics()
            .counter("server.slow_ops.captured")
            .unwrap_or(0)
            >= 1,
        "the capture must be counted"
    );
}
