//! Per-request tracing and the slow-op flight recorder.
//!
//! A [`Trace`] is started when a request enters the system and carries a
//! trail of `(label, microseconds since start)` span events as the request
//! moves through pipeline stages (parsed, queued, applied, replied). When
//! the request finishes, [`SlowOpRing::observe`] keeps the trail only if
//! the total latency crossed the configured threshold — so steady-state
//! cost is one ring check per request and the ring holds a bounded window
//! of the slowest, most interesting operations, dumpable on demand.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Spans a trace keeps inline; later spans are dropped (the trail is a
/// bounded flight-recorder breadcrumb, not a general event log).
pub const MAX_SPANS: usize = 8;

/// One in-flight request's span trail.
///
/// Entirely inline — no heap allocation. Traces are created on one thread
/// (the reactor, at parse time) and dropped on another (the worker), and a
/// per-request cross-thread malloc/free pair costs more than everything
/// else on this path combined.
#[derive(Debug)]
pub struct Trace {
    id: u64,
    start: Instant,
    span_count: usize,
    spans: [(&'static str, u64); MAX_SPANS],
}

impl Trace {
    /// Starts a trace; `id` is the caller's correlation id (e.g. the wire
    /// sequence number).
    #[must_use]
    pub fn start(id: u64) -> Trace {
        Trace {
            id,
            start: Instant::now(),
            span_count: 0,
            spans: [("", 0); MAX_SPANS],
        }
    }

    /// Rebuilds a trace around an `Instant` captured earlier — typically on
    /// another thread. Shipping the 16-byte start time across a channel and
    /// resuming is much cheaper than moving the whole span array.
    #[must_use]
    pub fn resume(id: u64, start: Instant) -> Trace {
        Trace {
            id,
            start,
            span_count: 0,
            spans: [("", 0); MAX_SPANS],
        }
    }

    /// Appends a span event stamped with the time since the trace started.
    pub fn span(&mut self, label: &'static str) {
        self.span_at(label, self.start.elapsed().as_micros() as u64);
    }

    /// Appends a span event at an already-measured offset — lets a caller
    /// reuse one clock read for a span stamp and its own bookkeeping.
    pub fn span_at(&mut self, label: &'static str, at_us: u64) {
        if self.span_count < MAX_SPANS {
            self.spans[self.span_count] = (label, at_us);
            self.span_count += 1;
        }
    }

    /// The recorded span trail, oldest first.
    #[must_use]
    pub fn spans(&self) -> &[(&'static str, u64)] {
        &self.spans[..self.span_count]
    }

    /// Microseconds since the trace started.
    #[must_use]
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The trace's correlation id.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// A completed slow operation, as kept in the ring.
#[derive(Debug, Clone)]
pub struct SlowOp {
    /// The request's correlation id.
    pub id: u64,
    /// What the operation was (the opcode label).
    pub op: &'static str,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// The span trail: `(label, microseconds since the request entered)`.
    pub spans: Vec<(&'static str, u64)>,
}

impl SlowOp {
    /// One-line rendering: `op id=N total=Nus [label@Nus ...]`.
    #[must_use]
    pub fn render(&self) -> String {
        let trail: Vec<String> = self
            .spans
            .iter()
            .map(|(label, us)| format!("{label}@{us}us"))
            .collect();
        format!(
            "{} id={} total={}us [{}]",
            self.op,
            self.id,
            self.total_us,
            trail.join(" ")
        )
    }
}

/// A bounded ring of the most recent slow operations.
#[derive(Debug)]
pub struct SlowOpRing {
    threshold_us: AtomicU64,
    captured: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowOp>>,
}

impl SlowOpRing {
    /// A ring keeping at most `capacity` slow ops; requests at or above
    /// `threshold_us` end-to-end are captured. A threshold of 0 captures
    /// everything (useful in tests); `u64::MAX` effectively disables
    /// capture.
    #[must_use]
    pub fn new(capacity: usize, threshold_us: u64) -> SlowOpRing {
        SlowOpRing {
            threshold_us: AtomicU64::new(threshold_us),
            captured: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// The current capture threshold in microseconds.
    #[must_use]
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Adjusts the capture threshold at runtime.
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Finishes a trace: if the request's end-to-end latency crossed the
    /// threshold, its trail is captured (evicting the oldest entry when the
    /// ring is full). Returns whether the op was captured.
    pub fn observe(&self, op: &'static str, trace: Trace) -> bool {
        let total_us = trace.elapsed_us();
        self.observe_at(op, trace, total_us)
    }

    /// [`SlowOpRing::observe`] with an already-measured end-to-end latency,
    /// so a caller recording the same value elsewhere (e.g. a latency
    /// histogram) pays for one clock read, not two.
    pub fn observe_at(&self, op: &'static str, mut trace: Trace, total_us: u64) -> bool {
        if total_us < self.threshold_us() {
            return false;
        }
        trace.span_at("done", total_us);
        self.captured.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("slow-op ring lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SlowOp {
            id: trace.id,
            op,
            total_us,
            spans: trace.spans().to_vec(),
        });
        true
    }

    /// Total slow ops captured since startup (including ones the bounded
    /// ring has since evicted).
    #[must_use]
    pub fn captured(&self) -> u64 {
        self.captured.load(Ordering::Relaxed)
    }

    /// Copies the ring's current contents, oldest first.
    #[must_use]
    pub fn dump(&self) -> Vec<SlowOp> {
        self.ring
            .lock()
            .expect("slow-op ring lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_threshold_ops_are_not_captured() {
        let ring = SlowOpRing::new(8, u64::MAX);
        let mut t = Trace::start(1);
        t.span("parsed");
        assert!(!ring.observe("get", t));
        assert_eq!(ring.captured(), 0);
        assert!(ring.dump().is_empty());
    }

    #[test]
    fn zero_threshold_captures_the_full_trail() {
        let ring = SlowOpRing::new(8, 0);
        let mut t = Trace::start(42);
        t.span("parsed");
        t.span("applied");
        assert!(ring.observe("put", t));
        let ops = ring.dump();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].id, 42);
        assert_eq!(ops[0].op, "put");
        // parsed, applied, plus the terminal "done" span.
        assert_eq!(ops[0].spans.len(), 3);
        assert_eq!(ops[0].spans[0].0, "parsed");
        assert_eq!(ops[0].spans.last().unwrap().0, "done");
        let line = ops[0].render();
        assert!(line.contains("put id=42"));
        assert!(line.contains("parsed@"));
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_newest() {
        let ring = SlowOpRing::new(4, 0);
        for id in 0..10 {
            ring.observe("get", Trace::start(id));
        }
        assert_eq!(ring.captured(), 10);
        let ops = ring.dump();
        assert_eq!(ops.len(), 4);
        assert_eq!(ops.first().unwrap().id, 6);
        assert_eq!(ops.last().unwrap().id, 9);
    }

    #[test]
    fn threshold_is_adjustable_at_runtime() {
        let ring = SlowOpRing::new(4, u64::MAX);
        assert!(!ring.observe("get", Trace::start(1)));
        ring.set_threshold_us(0);
        assert!(ring.observe("get", Trace::start(2)));
        assert_eq!(ring.threshold_us(), 0);
    }
}
