//! `txcached` — a standalone TxCache cache node.
//!
//! Hosts one versioned cache node behind the `wire` TCP protocol, the
//! deployment unit of the paper's cache tier (§4, §7). Application servers
//! reach it through the `txcache` client library's remote backend; the
//! database's invalidation stream reaches it as pushed
//! `InvalidationBatch` frames.
//!
//! ```text
//! txcached [--addr 127.0.0.1:11222] [--capacity-mb 64] [--name NAME]
//!          [--shards N] [--stats-every-secs N] [--no-metrics]
//!          [--slow-op-threshold-us N]
//! txcached --ping ADDR     # liveness probe: exit 0 if ADDR answers a Ping
//! txcached --metrics ADDR  # scrape a live node's metrics (human dump)
//! txcached --metrics ADDR --prom   # same, Prometheus text exposition
//! ```
//!
//! With `--addr 127.0.0.1:0` the kernel picks a free port; the bound address
//! is printed on the first line of stdout (`txcached listening on ADDR`), so
//! scripts (see `ci.sh --net-smoke` and `--obs-smoke`) can scrape it.
//!
//! `--metrics` sends the `Metrics` wire request and renders the decoded
//! snapshot: named counters, gauges, and per-opcode latency histograms with
//! p50/p99 computed from the log2 buckets. With `--stats-every-secs N` the
//! serving process itself prints the same per-opcode `p50/p99` lines on
//! every tick, next to the legacy counter dump.

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use cache_server::{NodeConfig, TxcachedServer};
use wire::{FramedStream, Request, Response};

struct Options {
    addr: String,
    capacity_mb: usize,
    name: String,
    shards: usize,
    stats_every_secs: u64,
    metrics_enabled: bool,
    slow_op_threshold_us: u64,
    ping: Option<String>,
    /// Scrape a live node's metrics instead of serving (`--metrics ADDR`).
    metrics: Option<String>,
    /// Render the `--metrics` scrape as Prometheus text exposition.
    prometheus: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: txcached [--addr HOST:PORT] [--capacity-mb N] [--name NAME] \
         [--shards N] [--stats-every-secs N] [--no-metrics] \
         [--slow-op-threshold-us N] | --ping HOST:PORT \
         | --metrics HOST:PORT [--prom]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let defaults = NodeConfig::default();
    let mut options = Options {
        addr: "127.0.0.1:11222".to_string(),
        capacity_mb: 64,
        name: "txcached-0".to_string(),
        shards: defaults.shards,
        stats_every_secs: 0,
        metrics_enabled: defaults.metrics,
        slow_op_threshold_us: defaults.slow_op_threshold_us,
        ping: None,
        metrics: None,
        prometheus: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr"),
            "--capacity-mb" => {
                options.capacity_mb = value("--capacity-mb").parse().unwrap_or_else(|_| usage())
            }
            "--name" => options.name = value("--name"),
            "--shards" => {
                options.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--stats-every-secs" => {
                options.stats_every_secs = value("--stats-every-secs")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--no-metrics" => options.metrics_enabled = false,
            "--slow-op-threshold-us" => {
                options.slow_op_threshold_us = value("--slow-op-threshold-us")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--ping" => options.ping = Some(value("--ping")),
            "--metrics" => options.metrics = Some(value("--metrics")),
            "--prom" => options.prometheus = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    options
}

/// Connects to a running node and checks that it answers a `Ping`.
fn ping(addr: &str) -> ExitCode {
    let probe = || -> wire::Result<()> {
        let stream = TcpStream::connect(addr).map_err(wire::WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(wire::WireError::Io)?;
        let mut conn = FramedStream::new(stream);
        match conn
            .call(&Request::Ping { nonce: 0xC0FFEE })?
            .into_result()?
        {
            Response::Pong { nonce: 0xC0FFEE } => Ok(()),
            other => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply: {other:?}"),
            ))),
        }
    };
    match probe() {
        Ok(()) => {
            println!("txcached at {addr} is alive");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ping {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Connects to a running node, sends a `Metrics` request, and renders the
/// decoded snapshot — the CLI scrape path behind `--metrics ADDR`.
fn scrape_metrics(addr: &str, prometheus: bool) -> ExitCode {
    let scrape = || -> wire::Result<obs::MetricsSnapshot> {
        let stream = TcpStream::connect(addr).map_err(wire::WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(wire::WireError::Io)?;
        let mut conn = FramedStream::new(stream);
        match conn.call(&Request::Metrics)?.into_result()? {
            Response::MetricsSnapshot(report) => Ok(cache_server::snapshot_from_wire(&report)),
            other => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply: {other:?}"),
            ))),
        }
    };
    match scrape() {
        Ok(snapshot) => {
            if prometheus {
                print!("{}", snapshot.render_prometheus());
            } else {
                println!("# txcached metrics at {addr}");
                print!("{}", snapshot.render_human());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("metrics scrape of {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let options = parse_options();
    if let Some(addr) = &options.ping {
        return ping(addr);
    }
    if let Some(addr) = &options.metrics {
        return scrape_metrics(addr, options.prometheus);
    }

    let server = match TxcachedServer::bind(
        &options.addr,
        options.name.clone(),
        NodeConfig {
            capacity_bytes: options.capacity_mb << 20,
            shards: options.shards,
            metrics: options.metrics_enabled,
            slow_op_threshold_us: options.slow_op_threshold_us,
            ..NodeConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("txcached: failed to bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("txcached listening on {}", server.local_addr());
    println!(
        "txcached node={} capacity={} MB shards={}",
        options.name,
        options.capacity_mb,
        options.shards.max(1)
    );
    // Line-buffered stdout only flushes on newline when attached to a pipe
    // after the process keeps running; force it so scrapers see the address.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let interval = if options.stats_every_secs == 0 {
        Duration::from_secs(3600)
    } else {
        Duration::from_secs(options.stats_every_secs)
    };
    let mut slow_ops_seen = 0u64;
    loop {
        std::thread::sleep(interval);
        if options.stats_every_secs > 0 {
            let s = server.stats();
            let c = server.cache_stats();
            println!(
                "txcached stats: conns={} reqs={} in={}B out={}B hits={} misses={} \
                 entries_bytes={} invalidation_batches={}",
                s.connections_accepted,
                s.requests,
                s.bytes_in,
                s.bytes_out,
                c.hits,
                c.misses(),
                c.used_bytes,
                s.invalidation_batches,
            );
            for shard in server.shard_stats() {
                println!(
                    "txcached shard[{}]: {} reads ({} waited), {} writes ({} waited), \
                     {:.2}% contended, {} entries {}B, evictions lru={} stale={}",
                    shard.shard,
                    shard.read_locks,
                    shard.read_waits,
                    shard.write_locks,
                    shard.write_waits,
                    shard.contention_rate() * 100.0,
                    shard.entries,
                    shard.used_bytes,
                    shard.lru_evictions,
                    shard.staleness_evictions,
                );
            }
            // Per-opcode latency lines from the obs histograms (only
            // opcodes that have actually been exercised).
            let snapshot = server.metrics();
            for (name, hist) in &snapshot.histograms {
                if hist.count > 0 {
                    println!(
                        "txcached latency {name}: n={} p50<={}us p99<={}us max={}us",
                        hist.count,
                        hist.percentile(0.5),
                        hist.percentile(0.99),
                        hist.max,
                    );
                }
            }
            // The ring is a non-draining dump; print only the entries
            // captured since the previous tick.
            let captured = snapshot.counter("server.slow_ops.captured").unwrap_or(0);
            if captured > slow_ops_seen {
                let ring = server.slow_ops();
                let new = (captured - slow_ops_seen).min(ring.len() as u64) as usize;
                for op in &ring[ring.len() - new..] {
                    println!("txcached slow op: {}", op.render());
                }
                slow_ops_seen = captured;
            }
            let _ = std::io::stdout().flush();
        }
    }
}
