//! Figure 5: peak throughput as a function of cache size.
//!
//! Reproduces both panels: (a) the in-memory database with the *No
//! consistency*, *TxCache*, and *No caching* series, and (b) the disk-bound
//! database with the *TxCache* and *No caching* series. Cache sizes follow
//! the paper's x-axes (64 MB–1 GB and 1–9 GB), scaled by `--scale` along with
//! the dataset.
//!
//! The binary also drives the multi-threaded concurrency sweep and doubles
//! as the CI bench-smoke gate: `--scaling-only --json BENCH_fig5.json
//! --baseline bench/BENCH_fig5.baseline.json` runs only the sweep, records
//! it, and exits non-zero if throughput regressed more than `--max-regress`
//! against the checked-in baseline.
//!
//! `--durability` switches the binary to the fsync-policy sweep instead:
//! committed write transactions against a real durable `mvdb` (WAL on disk)
//! under `Never`, `GroupCommit`, and `Always`, reported as commits/s with
//! the measured group-commit batching factor. The sweep reuses the
//! `SweepReport` JSON/baseline machinery with the policy index standing in
//! for the thread count (1 = Never, 2 = GroupCommit, 3 = Always), so the CI
//! gate's regression ceiling applies unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bench::{format_size, gate_failures, BenchArgs, SweepReport};
use harness::{
    run_concurrent, run_experiment, scalability_table, throughput_table, ConcurrentResult, DbKind,
    ExperimentConfig, ExperimentResult,
};
use mvdb::{ColumnType, Database, DbConfig, FsyncPolicy, Predicate, TableSchema, Value};
use txcache::CacheMode;
use txtypes::SimClock;

fn sweep(
    base: &ExperimentConfig,
    sizes_full_scale: &[usize],
    mode: CacheMode,
) -> Vec<(String, ExperimentResult)> {
    sizes_full_scale
        .iter()
        .map(|&bytes| {
            let config = ExperimentConfig {
                cache_bytes_full_scale: bytes,
                mode,
                ..*base
            };
            let result = run_experiment(&config).expect("experiment failed");
            (format_size(bytes), result)
        })
        .collect()
}

fn figure_panels(args: &BenchArgs) {
    // ---- Figure 5(a): in-memory database ----
    let base = args.config(DbKind::InMemory);
    let sizes_a: Vec<usize> = [64usize, 256, 512, 768, 1024]
        .iter()
        .map(|mb| mb << 20)
        .collect();
    let no_consistency = sweep(&base, &sizes_a, CacheMode::NoConsistency);
    let txcache = sweep(&base, &sizes_a, CacheMode::Full);
    let baseline = sweep(&base, &sizes_a[..1], CacheMode::Disabled);
    let baseline_rps = baseline[0].1.peak_throughput;

    println!(
        "{}",
        throughput_table(
            "Figure 5(a): in-memory database, 30 s staleness",
            &[
                ("No consistency", no_consistency),
                ("TxCache", txcache.clone())
            ],
        )
    );
    println!("No caching (baseline): {baseline_rps:.0} req/s  (paper: 928 req/s)\n");
    for (label, r) in &txcache {
        println!(
            "  TxCache {label:>6}: {:>7.0} req/s  speedup {:.1}x",
            r.peak_throughput,
            r.peak_throughput / baseline_rps
        );
    }

    // ---- Figure 5(b): disk-bound database ----
    let base = args.config(DbKind::DiskBound);
    let sizes_b: Vec<usize> = [1usize, 2, 3, 5, 7, 9].iter().map(|gb| gb << 30).collect();
    let txcache_b = sweep(&base, &sizes_b, CacheMode::Full);
    let baseline_b = sweep(&base, &sizes_b[..1], CacheMode::Disabled);
    let baseline_b_rps = baseline_b[0].1.peak_throughput;

    println!(
        "\n{}",
        throughput_table(
            "Figure 5(b): disk-bound database, 30 s staleness",
            &[("TxCache", txcache_b.clone())],
        )
    );
    println!("No caching (baseline): {baseline_b_rps:.0} req/s  (paper: 136 req/s)\n");
    for (label, r) in &txcache_b {
        println!(
            "  TxCache {label:>6}: {:>7.0} req/s  speedup {:.1}x",
            r.peak_throughput,
            r.peak_throughput / baseline_b_rps
        );
    }
}

/// Drives the concurrency sweep: measured wall-clock txn/s from N real
/// application-server threads sharing the database, cache, and pincushion.
/// With the sharded `mvdb` locking, reads scale with the hardware; the
/// per-table wait counters printed below show where contention concentrates.
fn thread_scaling(args: &BenchArgs) -> SweepReport {
    let base = args.config(DbKind::InMemory);
    let results: Vec<ConcurrentResult> = args
        .threads
        .iter()
        .map(|&t| run_concurrent(&base, t).expect("concurrent run failed"))
        .collect();
    println!(
        "\n{}",
        scalability_table(
            "Thread scaling: measured aggregate throughput (in-memory db, TxCache mode)",
            &results,
        )
    );
    for r in &results {
        let per_thread: Vec<String> = r
            .per_thread
            .iter()
            .map(|t| format!("{:.0}", t.usage.requests as f64 / t.wall_seconds.max(1e-9)))
            .collect();
        println!(
            "  {} thread(s): per-thread txn/s [{}], cache stats: {} hits / {} misses",
            r.threads,
            per_thread.join(", "),
            r.cache_stats.hits,
            r.cache_stats.misses(),
        );
    }
    if let Some(widest) = results.last() {
        println!("\n  db lock contention at {} threads:", widest.threads);
        for s in &widest.db_shards {
            println!(
                "    {:>12}: {:>9} reads ({} waited), {:>7} writes ({} waited), {:.2}% contended",
                s.table,
                s.read_locks,
                s.read_waits,
                s.write_locks,
                s.write_waits,
                s.contention_rate() * 100.0
            );
        }
    }

    SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: results.iter().map(|r| r.threads).collect(),
        txn_per_sec: results.iter().map(|r| r.throughput_rps).collect(),
    }
}

/// One policy's leg of the durability sweep: `total` committed single-row
/// updates from `writers` threads against a durable database in a scratch
/// directory, returning measured commits/s.
fn durability_leg(policy: FsyncPolicy, writers: usize, total: usize) -> (f64, u64, u64) {
    static LEG: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "txcache-bench-durability-{}-{}",
        std::process::id(),
        LEG.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DbConfig {
        fsync: policy,
        ..DbConfig::default()
    };
    let db = Arc::new(Database::open_durable(&dir, config, SimClock::new()).expect("open durable"));
    const ROWS: usize = 1024;
    db.create_table(
        TableSchema::new("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .unique_index("id"),
    )
    .expect("create table");
    db.bulk_load(
        "accounts",
        (0..ROWS)
            .map(|id| vec![Value::Int(id as i64), Value::Int(0)])
            .collect(),
    )
    .expect("bulk load");
    let appends_before = db.stats().wal_appends;
    let fsyncs_before = db.stats().wal_fsyncs;

    let t0 = std::time::Instant::now();
    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let db = Arc::clone(&db);
            let commits = total / writers + usize::from(w < total % writers);
            std::thread::spawn(move || {
                // Each writer owns the rows congruent to it mod `writers`,
                // so no two transactions ever conflict on a version.
                for i in 0..commits {
                    let id = ((w + i * writers) % ROWS) as i64;
                    let token = db.begin_rw().expect("begin");
                    db.update(
                        token,
                        "accounts",
                        &Predicate::eq("id", id),
                        &[("balance".to_string(), Value::Int(i as i64))],
                    )
                    .expect("update");
                    db.commit(token).expect("commit");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    let wall = t0.elapsed().as_secs_f64();

    let stats = db.stats();
    let appends = stats.wal_appends - appends_before;
    let fsyncs = stats.wal_fsyncs - fsyncs_before;
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    (total as f64 / wall.max(1e-9), appends, fsyncs)
}

/// The fsync-policy sweep: commits/s under each durability policy, printed
/// with the measured batching factor and mapped into a [`SweepReport`]
/// (policy index as the "thread count") for the CI regression gate.
fn durability_sweep(args: &BenchArgs) -> SweepReport {
    let policies = [
        ("Never (no fsync)", FsyncPolicy::Never),
        (
            "GroupCommit 100us",
            FsyncPolicy::GroupCommit { max_wait_us: 100 },
        ),
        ("Always (per commit)", FsyncPolicy::Always),
    ];
    let writers = 4;
    let total = args.requests.max(writers);

    println!(
        "Durability sweep: {total} committed single-row updates, {writers} writer threads, \
         WAL in {}",
        std::env::temp_dir().display()
    );
    println!(
        "\n  {:<20} {:>12} {:>14} {:>9} {:>16}",
        "fsync policy", "commits/s", "mean commit us", "fsyncs", "commits/fsync"
    );
    let mut rates = Vec::new();
    for (label, policy) in policies {
        let (rate, appends, fsyncs) = durability_leg(policy, writers, total);
        let mean_us = 1e6 / rate * writers as f64;
        let batching = if fsyncs > 0 {
            format!("{:.1}", appends as f64 / fsyncs as f64)
        } else {
            "-".to_string()
        };
        println!("  {label:<20} {rate:>12.0} {mean_us:>14.1} {fsyncs:>9} {batching:>16}");
        rates.push(rate);
    }

    SweepReport {
        available_parallelism: std::thread::available_parallelism().map_or(1, usize::from),
        threads: (1..=rates.len()).collect(),
        txn_per_sec: rates,
    }
}

fn main() {
    let args = BenchArgs::parse();

    if std::env::args().any(|a| a == "--durability") {
        let report = durability_sweep(&args);
        if let Some(path) = &args.json_out {
            std::fs::write(path, report.to_json()).expect("failed to write sweep JSON");
            println!("\n  sweep written to {path}");
        }
        let failures = gate_failures(&args, &report);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("BENCH GATE FAILED: {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    if !args.scaling_only {
        figure_panels(&args);
    }

    let report = thread_scaling(&args);

    if let Some(path) = &args.json_out {
        std::fs::write(path, report.to_json()).expect("failed to write sweep JSON");
        println!("\n  sweep written to {path}");
    }

    let failures = gate_failures(&args, &report);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("BENCH GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
