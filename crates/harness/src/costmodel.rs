//! The service-time cost model for the simulated cluster.
//!
//! The paper measures peak throughput on a ten-machine cluster in which the
//! database server is (almost always) the bottleneck. Our reproduction runs
//! the real engine, cache, and library in one process, so absolute wall-clock
//! throughput would mostly reflect the host this happens to run on. Instead,
//! the harness charges every request's *measured* resource usage — database
//! queries, simulated buffer-page hits and misses, cacheable calls, cache
//! round trips — to a calibrated service-time model and derives the peak
//! throughput of the simulated cluster from the saturated bottleneck, exactly
//! the quantity Figure 5 and 7 plot.
//!
//! The constants are calibrated so the no-caching baseline lands near the
//! paper's reported 928 req/s (in-memory) and 136 req/s (disk-bound), and so
//! a fully warmed cache shifts the bottleneck toward the web tier at roughly
//! the speedups the paper reports. The *shape* of every reproduced curve
//! comes from the real protocol behaviour (hit rates, invalidations,
//! consistency misses), not from these constants.

use serde::{Deserialize, Serialize};
use txcache::CommitInfo;

/// Calibrated per-operation service times, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU cost on the database server per query (parse/plan/execute).
    pub db_query_cpu_us: f64,
    /// Cost of touching a buffer-resident page.
    pub db_page_hit_us: f64,
    /// Cost of reading a page from disk (dominates the disk-bound config).
    pub db_page_miss_us: f64,
    /// Database-side cost of a write statement (WAL + index maintenance).
    pub db_write_us: f64,
    /// Web/application-server CPU per interaction, excluding cacheable calls.
    pub web_base_us: f64,
    /// Web-server CPU per cacheable call (argument marshalling, rendering).
    pub web_per_call_us: f64,
    /// Round-trip cost of one cache operation, split between the web server
    /// and the cache node.
    pub cache_roundtrip_us: f64,
    /// Number of web servers in the simulated cluster.
    pub web_servers: usize,
    /// Number of cache nodes in the simulated cluster.
    pub cache_nodes: usize,
}

impl CostModel {
    /// The in-memory cluster of §8: one database server, seven web servers,
    /// two dedicated cache nodes.
    #[must_use]
    pub fn in_memory() -> CostModel {
        CostModel {
            db_query_cpu_us: 110.0,
            db_page_hit_us: 4.0,
            db_page_miss_us: 4.0, // the working set fits in the buffer cache
            db_write_us: 250.0,
            web_base_us: 150.0,
            web_per_call_us: 60.0,
            cache_roundtrip_us: 40.0,
            web_servers: 7,
            cache_nodes: 2,
        }
    }

    /// The disk-bound cluster of §8: eight hosts each run a web server and a
    /// cache node; the database is limited by disk reads.
    #[must_use]
    pub fn disk_bound() -> CostModel {
        CostModel {
            db_query_cpu_us: 110.0,
            db_page_hit_us: 4.0,
            db_page_miss_us: 2_400.0,
            db_write_us: 400.0,
            web_base_us: 150.0,
            web_per_call_us: 60.0,
            cache_roundtrip_us: 40.0,
            web_servers: 8,
            cache_nodes: 8,
        }
    }
}

/// Aggregate resource demand measured over a batch of requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Number of requests (interactions) aggregated.
    pub requests: u64,
    /// Database queries issued.
    pub db_queries: u64,
    /// Buffer-pool page hits.
    pub db_page_hits: u64,
    /// Buffer-pool page misses (simulated disk reads).
    pub db_page_misses: u64,
    /// Rows written by read/write transactions.
    pub rows_written: u64,
    /// Cacheable calls made.
    pub cacheable_calls: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
}

impl ResourceUsage {
    /// Adds one finished transaction's report to the aggregate.
    pub fn absorb(&mut self, report: &CommitInfo) {
        self.requests += 1;
        self.db_queries += report.db_queries;
        self.db_page_hits += report.db_pages.hits;
        self.db_page_misses += report.db_pages.misses;
        self.rows_written += report.rows_written;
        self.cacheable_calls += report.cacheable_calls();
        self.cache_hits += report.cache_hits;
    }

    /// Merges another aggregate (e.g. a different worker thread's) into this
    /// one.
    pub fn merge(&mut self, other: &ResourceUsage) {
        self.requests += other.requests;
        self.db_queries += other.db_queries;
        self.db_page_hits += other.db_page_hits;
        self.db_page_misses += other.db_page_misses;
        self.rows_written += other.rows_written;
        self.cacheable_calls += other.cacheable_calls;
        self.cache_hits += other.cache_hits;
    }

    /// Average database service time per request, in microseconds.
    #[must_use]
    pub fn db_us_per_request(&self, model: &CostModel) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let total = self.db_queries as f64 * model.db_query_cpu_us
            + self.db_page_hits as f64 * model.db_page_hit_us
            + self.db_page_misses as f64 * model.db_page_miss_us
            + self.rows_written as f64 * model.db_write_us;
        total / self.requests as f64
    }

    /// Average web-server service time per request, in microseconds.
    #[must_use]
    pub fn web_us_per_request(&self, model: &CostModel) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let total = self.requests as f64 * model.web_base_us
            + self.cacheable_calls as f64 * (model.web_per_call_us + model.cache_roundtrip_us);
        total / self.requests as f64
    }

    /// Average cache-node service time per request, in microseconds
    /// (lookups plus insertions, charged to the cache tier).
    #[must_use]
    pub fn cache_us_per_request(&self, model: &CostModel) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let ops = self.cacheable_calls as f64; // one lookup per call; misses add an insert
        let inserts = (self.cacheable_calls - self.cache_hits) as f64;
        (ops + inserts) * model.cache_roundtrip_us / self.requests as f64
    }

    /// Peak sustainable request rate of the simulated cluster, in requests
    /// per second: the saturation point of the most loaded tier.
    #[must_use]
    pub fn peak_throughput(&self, model: &CostModel) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let db = capacity(self.db_us_per_request(model), 1);
        let web = capacity(self.web_us_per_request(model), model.web_servers);
        let cache = capacity(self.cache_us_per_request(model), model.cache_nodes);
        db.min(web).min(cache)
    }

    /// Which tier saturates first at peak load.
    #[must_use]
    pub fn bottleneck(&self, model: &CostModel) -> Bottleneck {
        let db = capacity(self.db_us_per_request(model), 1);
        let web = capacity(self.web_us_per_request(model), model.web_servers);
        let cache = capacity(self.cache_us_per_request(model), model.cache_nodes);
        if db <= web && db <= cache {
            Bottleneck::Database
        } else if web <= cache {
            Bottleneck::WebServers
        } else {
            Bottleneck::CacheNodes
        }
    }

    /// Cache hit rate over cacheable calls, in [0, 1].
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.cacheable_calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cacheable_calls as f64
        }
    }
}

/// The tier that limits throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The single database server.
    Database,
    /// The web/application servers.
    WebServers,
    /// The cache nodes.
    CacheNodes,
}

fn capacity(us_per_request: f64, servers: usize) -> f64 {
    if us_per_request <= 0.0 {
        f64::INFINITY
    } else {
        servers as f64 * 1_000_000.0 / us_per_request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvdb::PageCounts;
    use txtypes::Timestamp;

    fn report(db_queries: u64, hits: u64, misses: u64, cache_hits: u64, calls: u64) -> CommitInfo {
        CommitInfo {
            timestamp: Timestamp(1),
            read_only: true,
            db_queries,
            db_pages: PageCounts { hits, misses },
            cache_hits,
            cache_misses: calls - cache_hits,
            rows_written: 0,
        }
    }

    #[test]
    fn baseline_calibration_is_near_the_paper() {
        // A no-cache RUBiS interaction issues roughly 8 queries touching ~16
        // buffer-resident pages.
        let mut usage = ResourceUsage::default();
        for _ in 0..100 {
            usage.absorb(&report(8, 16, 0, 0, 6));
        }
        let peak = usage.peak_throughput(&CostModel::in_memory());
        assert!(
            (600.0..1400.0).contains(&peak),
            "in-memory baseline {peak} should be near the paper's ~928 req/s"
        );
        assert_eq!(
            usage.bottleneck(&CostModel::in_memory()),
            Bottleneck::Database
        );

        // Disk-bound: a fraction of pages miss the buffer pool.
        let mut usage = ResourceUsage::default();
        for _ in 0..100 {
            usage.absorb(&report(8, 13, 3, 0, 6));
        }
        let peak = usage.peak_throughput(&CostModel::disk_bound());
        assert!(
            (80.0..250.0).contains(&peak),
            "disk-bound baseline {peak} should be near the paper's ~136 req/s"
        );
    }

    #[test]
    fn caching_shifts_bottleneck_and_raises_throughput() {
        // 90% hit rate: most requests never touch the database.
        let mut cached = ResourceUsage::default();
        for i in 0..100u64 {
            if i % 10 == 0 {
                cached.absorb(&report(8, 16, 0, 0, 6));
            } else {
                cached.absorb(&report(0, 0, 0, 6, 6));
            }
        }
        let model = CostModel::in_memory();
        let peak_cached = cached.peak_throughput(&model);

        let mut baseline = ResourceUsage::default();
        for _ in 0..100 {
            baseline.absorb(&report(8, 16, 0, 0, 6));
        }
        let peak_base = baseline.peak_throughput(&model);
        let speedup = peak_cached / peak_base;
        assert!(
            (2.0..8.0).contains(&speedup),
            "speedup {speedup} should be in the paper's 2–6× range"
        );
        assert!(cached.hit_rate() > 0.85);
    }

    #[test]
    fn empty_usage_is_zero() {
        let usage = ResourceUsage::default();
        assert_eq!(usage.peak_throughput(&CostModel::in_memory()), 0.0);
        assert_eq!(usage.hit_rate(), 0.0);
        assert_eq!(usage.db_us_per_request(&CostModel::in_memory()), 0.0);
    }

    #[test]
    fn writes_are_charged_to_the_database() {
        let mut usage = ResourceUsage::default();
        usage.absorb(&CommitInfo {
            timestamp: Timestamp(1),
            read_only: false,
            db_queries: 2,
            db_pages: PageCounts { hits: 4, misses: 0 },
            cache_hits: 0,
            cache_misses: 0,
            rows_written: 3,
        });
        let with_writes = usage.db_us_per_request(&CostModel::in_memory());
        let mut usage2 = ResourceUsage::default();
        usage2.absorb(&report(2, 4, 0, 0, 0));
        assert!(with_writes > usage2.db_us_per_request(&CostModel::in_memory()));
    }
}
