//! A compact binary serialization format for cached values.
//!
//! The TxCache library stores the results of cacheable functions on cache
//! nodes as opaque byte strings. The paper's PHP bindings use PHP's native
//! serializer; this crate provides an equivalent for Rust: a small,
//! non-self-describing binary format driven by `serde`. Any
//! `#[derive(Serialize, Deserialize)]` type can be cached.
//!
//! Properties:
//!
//! * **Deterministic** — equal values encode to equal bytes, which also makes
//!   the encoding usable for building cache keys from call arguments.
//! * **Non-self-describing** — like `bincode`, decoding requires knowing the
//!   target type; `deserialize_any` is unsupported. Cacheable functions always
//!   know their result type, so this is not a limitation.
//! * **Dependency-free** — implemented directly against `serde`'s
//!   `Serializer`/`Deserializer` traits.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//! use txcache::codec::{decode, encode};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Item { id: u64, name: String, price: f64 }
//!
//! let item = Item { id: 7, name: "vase".into(), price: 12.5 };
//! let bytes = encode(&item).unwrap();
//! let back: Item = decode(&bytes).unwrap();
//! assert_eq!(back, item);
//! ```

mod de;
mod ser;

use bytes::Bytes;
use serde::{de::DeserializeOwned, Serialize};
use txtypes::Error;

pub use de::Decoder;
pub use ser::Encoder;

/// Serializes a value into the TxCache binary format.
pub fn encode<T: Serialize>(value: &T) -> Result<Bytes, Error> {
    let mut encoder = Encoder::new();
    value
        .serialize(&mut encoder)
        .map_err(|e| Error::Serialization(e.to_string()))?;
    Ok(encoder.into_bytes())
}

/// Deserializes a value from the TxCache binary format.
pub fn decode<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut decoder = Decoder::new(bytes);
    let value = T::deserialize(&mut decoder).map_err(|e| Error::Serialization(e.to_string()))?;
    decoder
        .finish()
        .map_err(|e| Error::Serialization(e.to_string()))?;
    Ok(value)
}

/// Renders a value's encoding as a short hexadecimal string, used to build
/// cache-key argument strings that are canonical and printable.
pub fn encode_hex<T: Serialize>(value: &T) -> Result<String, Error> {
    let bytes = encode(value)?;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes.iter() {
        out.push_str(&format!("{b:02x}"));
    }
    Ok(out)
}

/// Errors produced while encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl serde::ser::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl serde::de::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Nested {
        tags: Vec<String>,
        maybe: Option<i64>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    enum Kind {
        Empty,
        Scalar(u32),
        Pair(u32, u32),
        Record { a: String, b: bool },
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug, Clone)]
    struct Everything {
        b: bool,
        i: i64,
        u: u64,
        f: f64,
        s: String,
        v: Vec<u32>,
        map: BTreeMap<String, i32>,
        nested: Nested,
        kinds: Vec<Kind>,
        unit: (),
        tuple: (u8, String),
        opt_none: Option<String>,
        ch: char,
    }

    fn sample() -> Everything {
        Everything {
            b: true,
            i: -42,
            u: 7,
            f: 3.25,
            s: "héllo wörld".into(),
            v: vec![1, 2, 3],
            map: [("a".to_string(), 1), ("b".to_string(), -2)]
                .into_iter()
                .collect(),
            nested: Nested {
                tags: vec!["x".into(), "y".into()],
                maybe: Some(-9),
            },
            kinds: vec![
                Kind::Empty,
                Kind::Scalar(5),
                Kind::Pair(1, 2),
                Kind::Record {
                    a: "z".into(),
                    b: false,
                },
            ],
            unit: (),
            tuple: (255, "t".into()),
            opt_none: None,
            ch: '✓',
        }
    }

    #[test]
    fn roundtrip_everything() {
        let value = sample();
        let bytes = encode(&value).unwrap();
        let back: Everything = decode(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(decode::<u8>(&encode(&7u8).unwrap()).unwrap(), 7);
        assert_eq!(decode::<i32>(&encode(&-3i32).unwrap()).unwrap(), -3);
        assert_eq!(decode::<u128>(&encode(&10u128).unwrap()).unwrap(), 10);
        assert_eq!(decode::<i128>(&encode(&-10i128).unwrap()).unwrap(), -10);
        assert_eq!(decode::<f32>(&encode(&1.5f32).unwrap()).unwrap(), 1.5);
        assert!(!decode::<bool>(&encode(&false).unwrap()).unwrap());
        assert_eq!(
            decode::<String>(&encode(&"abc".to_string()).unwrap()).unwrap(),
            "abc"
        );
        assert_eq!(decode::<()>(&encode(&()).unwrap()).unwrap(), ());
        assert_eq!(decode::<char>(&encode(&'q').unwrap()).unwrap(), 'q');
        assert_eq!(
            decode::<Option<u64>>(&encode(&Some(5u64)).unwrap()).unwrap(),
            Some(5)
        );
        assert_eq!(
            decode::<Option<u64>>(&encode(&None::<u64>).unwrap()).unwrap(),
            None
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode(&sample()).unwrap();
        let b = encode(&sample()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            encode_hex(&(1u64, "x")).unwrap(),
            encode_hex(&(1u64, "x")).unwrap()
        );
        assert_ne!(
            encode_hex(&(1u64, "x")).unwrap(),
            encode_hex(&(2u64, "x")).unwrap()
        );
    }

    #[test]
    fn different_values_encode_differently() {
        assert_ne!(encode(&1u64).unwrap(), encode(&2u64).unwrap());
        assert_ne!(encode(&"a").unwrap(), encode(&"b").unwrap());
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_input() {
        let bytes = encode(&12345u64).unwrap();
        assert!(decode::<u64>(&bytes[..4]).is_err());
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(decode::<u64>(&extended).is_err());
    }

    #[test]
    fn decode_rejects_invalid_bool_and_option_tags() {
        assert!(decode::<bool>(&[7]).is_err());
        assert!(decode::<Option<u64>>(&[9]).is_err());
        assert!(decode::<char>(&encode(&u32::MAX).unwrap()[..4]).is_err());
    }

    #[test]
    fn decode_rejects_bad_utf8() {
        // Manually build: len=1, byte 0xff.
        let mut buf = encode(&1u64).unwrap().to_vec();
        buf.push(0xff);
        assert!(decode::<String>(&buf).is_err());
    }

    #[test]
    fn error_display() {
        let e = CodecError("boom".into());
        assert!(e.to_string().contains("boom"));
    }
}
