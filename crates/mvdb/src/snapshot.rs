//! Pinned snapshots (§5.1).
//!
//! The paper adds a `PIN` command to the database: it assigns an identifier
//! to the snapshot a read-only transaction runs at, and guarantees the
//! database state visible to that snapshot is retained until a matching
//! `UNPIN`. A pinned snapshot is identified by the commit timestamp of the
//! last transaction visible to it, which makes it trivially ordered with
//! respect to update transactions and other snapshots.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use txtypes::{Error, Result, Timestamp};

/// Identifier of a pinned snapshot: the commit timestamp of the last
/// transaction visible to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SnapshotId(pub Timestamp);

impl SnapshotId {
    /// The snapshot's timestamp.
    #[must_use]
    pub fn timestamp(self) -> Timestamp {
        self.0
    }
}

impl std::fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snap:{}", self.0.as_u64())
    }
}

/// Reference-counted registry of pinned snapshots inside the database.
///
/// The vacuum process consults [`PinRegistry::horizon`] to decide which dead
/// tuple versions may be reclaimed: anything invisible to the oldest pin (and
/// to the oldest running transaction, handled by the caller) is garbage.
#[derive(Debug, Default)]
pub struct PinRegistry {
    pins: BTreeMap<Timestamp, usize>,
}

impl PinRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> PinRegistry {
        PinRegistry::default()
    }

    /// Pins a snapshot (incrementing its reference count) and returns its id.
    pub fn pin(&mut self, ts: Timestamp) -> SnapshotId {
        *self.pins.entry(ts).or_insert(0) += 1;
        SnapshotId(ts)
    }

    /// Releases one reference to a pinned snapshot.
    pub fn unpin(&mut self, id: SnapshotId) -> Result<()> {
        match self.pins.get_mut(&id.0) {
            Some(count) if *count > 1 => {
                *count -= 1;
                Ok(())
            }
            Some(_) => {
                self.pins.remove(&id.0);
                Ok(())
            }
            None => Err(Error::SnapshotUnavailable(format!(
                "snapshot {id} is not pinned"
            ))),
        }
    }

    /// Returns `true` if the given timestamp is currently pinned.
    #[must_use]
    pub fn is_pinned(&self, ts: Timestamp) -> bool {
        self.pins.contains_key(&ts)
    }

    /// The oldest pinned timestamp, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<Timestamp> {
        self.pins.keys().next().copied()
    }

    /// The vacuum horizon implied by the pins alone: versions dead before
    /// this timestamp are invisible to every pinned snapshot. When nothing is
    /// pinned, the supplied `latest` timestamp is the horizon.
    #[must_use]
    pub fn horizon(&self, latest: Timestamp) -> Timestamp {
        self.oldest().unwrap_or(latest)
    }

    /// Number of distinct pinned snapshots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// Returns `true` if no snapshots are pinned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// The currently pinned timestamps, oldest first.
    #[must_use]
    pub fn pinned_timestamps(&self) -> Vec<Timestamp> {
        self.pins.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_unpin_refcounting() {
        let mut r = PinRegistry::new();
        let a = r.pin(Timestamp(5));
        let b = r.pin(Timestamp(5));
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
        r.unpin(a).unwrap();
        assert!(r.is_pinned(Timestamp(5)));
        r.unpin(b).unwrap();
        assert!(!r.is_pinned(Timestamp(5)));
        assert!(r.unpin(a).is_err());
    }

    #[test]
    fn horizon_is_oldest_pin_or_latest() {
        let mut r = PinRegistry::new();
        assert_eq!(r.horizon(Timestamp(50)), Timestamp(50));
        r.pin(Timestamp(10));
        r.pin(Timestamp(30));
        assert_eq!(r.horizon(Timestamp(50)), Timestamp(10));
        assert_eq!(r.oldest(), Some(Timestamp(10)));
        assert_eq!(r.pinned_timestamps(), vec![Timestamp(10), Timestamp(30)]);
    }

    #[test]
    fn display_and_accessors() {
        let id = SnapshotId(Timestamp(7));
        assert_eq!(id.to_string(), "snap:7");
        assert_eq!(id.timestamp(), Timestamp(7));
        assert!(PinRegistry::new().is_empty());
    }
}
