//! The database facade.
//!
//! [`Database`] ties the storage, planning, execution, transaction, pinning,
//! and invalidation machinery together behind the interface the TxCache
//! library needs (§5):
//!
//! * read/write transactions under snapshot isolation;
//! * read-only transactions that can run at pinned past snapshots
//!   (`PIN` / `UNPIN` / `BEGIN SNAPSHOTID`);
//! * per-query validity intervals and invalidation tags piggybacked on
//!   results;
//! * an ordered invalidation stream published at commit time;
//! * a vacuum process that respects pinned snapshots.
//!
//! # Concurrency model
//!
//! The engine no longer lives behind one mutex. State is split so that the
//! common read path — begin a read-only transaction, execute queries, commit
//! — takes no exclusive lock anywhere and only *shared* locks on the tables
//! it touches:
//!
//! * each table is an independent shard behind a reader/writer lock
//!   ([`TableShard`]); queries hold shared locks, DML and commit stamping
//!   hold exclusive locks;
//! * `latest` is an atomic: beginning a transaction at the latest snapshot
//!   and reading `latest_timestamp()` never block;
//! * commit timestamps are allocated under a small *commit sequencer* mutex
//!   held only by writers;
//! * in-flight transaction state lives in a registry sharded by transaction
//!   id, each transaction behind its own mutex, so two transactions only
//!   ever contend on a brief shard-map lookup;
//! * the buffer pool is hash-sharded ([`SharedBuffer`]) and the statistics
//!   counters are striped relaxed atomics ([`AtomicDbStats`]).
//!
//! Deadlock freedom comes from one global lock-order rule. Locks are only
//! ever acquired in this ascending order (any prefix may be skipped):
//!
//! 1. the table map (shared, briefly — exclusively only in `create_table`);
//! 2. table shard locks, **in sorted table-name order** (commit and abort
//!    lock every written table; join queries lock both sides; everything
//!    else locks one table at a time);
//! 3. the commit sequencer;
//! 4. the pin registry;
//! 5. transaction-registry shard maps;
//! 6. a single transaction's state mutex;
//! 7. the invalidation bus;
//! 8. buffer-pool shard mutexes (leaf).
//!
//! Commit stamps versions while holding the written tables' exclusive locks
//! *and* the sequencer, then advances `latest` and publishes the
//! invalidation message before releasing the sequencer — so the invalidation
//! stream is totally ordered by commit timestamp and a reader can never
//! observe a half-stamped transaction.
//!
//! Vacuum coordinates with the lock-free begin path through a sequence
//! counter (`begin_epoch`): it computes its horizon — under the sequencer,
//! the pin registry, and the registry shards — with the epoch odd, and a
//! transaction beginning at `latest` re-checks the epoch after registering,
//! retrying if a vacuum horizon computation overlapped. The horizon is
//! recorded as a watermark (new pins below it are refused) before tables are
//! swept one at a time.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{Histogram, MetricsSnapshot, Registry, StripedCounter as ObsCounter};

use crossbeam::channel::Receiver;
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use serde::{Deserialize, Serialize};
use txtypes::{
    Error, InvalidationTag, Result, SimClock, TagSet, Timestamp, ValidityInterval, WallClock,
};

use crate::buffer::{BufferStats, SharedBuffer};
use crate::exec::{execute_plan, ExecOptions, PageCounts, QueryResult};
use crate::invalidation::{InvalidationBus, InvalidationMessage};
use crate::plan::{choose_access_path, plan_query, AccessPath, QueryPlan};
use crate::query::{Predicate, SelectQuery};
use crate::schema::TableSchema;
use crate::snapshot::{PinRegistry, SnapshotId};
use crate::stats::{AtomicDbStats, DbStats, ShardStats, StripedCounter};
use crate::table::{Slot, Table};
use crate::tuple::{Stamp, TupleVersion, TxnId};
use crate::txn::{Transaction, TxnMode, TxnToken};
use crate::value::Value;
use crate::wal::codec::{encode_record, scan_wal, WalCommit, WalOp, WalRecord};
use crate::wal::log::{crashed_err, CrashPoint, FsyncPolicy, WalLog};
use crate::wal::snapshot_file::{self, SnapshotImage, SnapshotTable, SnapshotVersion};
use crate::wal::{self, RecoverOptions, RecoveryReport};
use wire::sim::{fnv1a, FNV_OFFSET};

/// Static configuration of a [`Database`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DbConfig {
    /// Size of the simulated buffer pool in pages. Together with the dataset
    /// size this determines whether the configuration behaves "in-memory" or
    /// "disk-bound".
    pub buffer_pages: usize,
    /// Tuples per simulated heap page.
    pub rows_per_page: usize,
    /// If a single transaction modifies at least this many rows of one table,
    /// its keyed tags for that table are collapsed into a wildcard (§5.3).
    pub wildcard_threshold: usize,
    /// Database-side TxCache support (validity tracking + invalidation tags).
    /// Disabling it models the stock DBMS baseline of §8.1.
    pub exec: ExecOptions,
    /// When (and whether) commits wait for the write-ahead log to fsync.
    /// Only consulted when the database is opened durably
    /// ([`Database::recover`] / [`Database::open_durable`]); in-memory
    /// databases ignore it.
    pub fsync: FsyncPolicy,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 1 << 16,
            rows_per_page: 32,
            wildcard_threshold: 64,
            exec: ExecOptions::default(),
            fsync: FsyncPolicy::default(),
        }
    }
}

/// One table's storage behind its own reader/writer lock, with counters that
/// make lock contention observable (`mvdb::stats::ShardStats`).
struct TableShard {
    data: RwLock<Table>,
    read_locks: StripedCounter,
    write_locks: StripedCounter,
    read_waits: StripedCounter,
    write_waits: StripedCounter,
}

impl TableShard {
    fn new(table: Table) -> TableShard {
        TableShard {
            data: RwLock::new(table),
            read_locks: StripedCounter::default(),
            write_locks: StripedCounter::default(),
            read_waits: StripedCounter::default(),
            write_waits: StripedCounter::default(),
        }
    }

    /// Takes the shared lock, counting the acquisition and whether it had to
    /// wait behind a writer.
    fn read(&self) -> RwLockReadGuard<'_, Table> {
        self.read_locks.bump();
        if let Some(guard) = self.data.try_read() {
            return guard;
        }
        self.read_waits.bump();
        self.data.read()
    }

    /// Takes the exclusive lock, counting the acquisition and whether it had
    /// to wait.
    fn write(&self) -> RwLockWriteGuard<'_, Table> {
        self.write_locks.bump();
        if let Some(guard) = self.data.try_write() {
            return guard;
        }
        self.write_waits.bump();
        self.data.write()
    }

    fn stats(&self, table: &str) -> ShardStats {
        ShardStats {
            table: table.to_string(),
            read_locks: self.read_locks.get(),
            write_locks: self.write_locks.get(),
            read_waits: self.read_waits.get(),
            write_waits: self.write_waits.get(),
        }
    }

    fn reset_stats(&self) {
        self.read_locks.reset();
        self.write_locks.reset();
        self.read_waits.reset();
        self.write_waits.reset();
    }
}

/// Number of shards the transaction registry is split into.
const TXN_SHARDS: usize = 32;

/// In-flight transaction state, sharded by transaction id. Each transaction
/// sits behind its own mutex; the shard maps are locked only for insert,
/// lookup, and remove.
struct TxnRegistry {
    shards: Vec<Mutex<HashMap<TxnId, Arc<Mutex<Transaction>>>>>,
}

impl TxnRegistry {
    fn new() -> TxnRegistry {
        TxnRegistry {
            shards: (0..TXN_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, id: TxnId) -> &Mutex<HashMap<TxnId, Arc<Mutex<Transaction>>>> {
        &self.shards[(id as usize) % TXN_SHARDS]
    }

    fn insert(&self, id: TxnId, txn: Arc<Mutex<Transaction>>) {
        self.shard(id).lock().insert(id, txn);
    }

    fn get(&self, id: TxnId) -> Option<Arc<Mutex<Transaction>>> {
        self.shard(id).lock().get(&id).cloned()
    }

    fn remove(&self, id: TxnId) -> Option<Arc<Mutex<Transaction>>> {
        self.shard(id).lock().remove(&id)
    }

    /// The minimum snapshot over all in-flight transactions, if any.
    fn min_snapshot(&self) -> Option<Timestamp> {
        let mut min = None;
        for shard in &self.shards {
            for txn in shard.lock().values() {
                let snapshot = txn.lock().snapshot;
                min = Some(min.map_or(snapshot, |m: Timestamp| m.min(snapshot)));
            }
        }
        min
    }
}

/// Cached `db.plan.<path>` counter handles, one per access-path kind, so the
/// query hot path records planner decisions without touching the registry
/// lock. Labels come from [`AccessPath::label`].
struct PlanCounters {
    index_eq: Arc<ObsCounter>,
    index_in: Arc<ObsCounter>,
    index_range: Arc<ObsCounter>,
    index_ordered: Arc<ObsCounter>,
    index_endpoint: Arc<ObsCounter>,
    seq_scan: Arc<ObsCounter>,
}

impl PlanCounters {
    fn new(obs: &Registry) -> PlanCounters {
        PlanCounters {
            index_eq: obs.counter("db.plan.index_eq"),
            index_in: obs.counter("db.plan.index_in"),
            index_range: obs.counter("db.plan.index_range"),
            index_ordered: obs.counter("db.plan.index_ordered"),
            index_endpoint: obs.counter("db.plan.index_endpoint"),
            seq_scan: obs.counter("db.plan.seq_scan"),
        }
    }

    fn bump(&self, access: &AccessPath) {
        match access {
            AccessPath::IndexEq { .. } => &self.index_eq,
            AccessPath::IndexIn { .. } => &self.index_in,
            AccessPath::IndexRange { .. } => &self.index_range,
            AccessPath::IndexOrdered { .. } => &self.index_ordered,
            AccessPath::IndexEndpoint { .. } => &self.index_endpoint,
            AccessPath::SeqScan => &self.seq_scan,
        }
        .bump();
    }
}

/// A multiversion relational database with TxCache support.
pub struct Database {
    tables: RwLock<HashMap<String, TableShard>>,
    /// The latest committed timestamp; written only under `commit_lock`.
    latest: AtomicU64,
    /// Snapshots strictly below this may have been vacuumed; written only
    /// while holding the pin registry. New pins below it are refused.
    vacuum_watermark: AtomicU64,
    /// Seqlock-style counter coordinating lock-free begins with vacuum's
    /// horizon computation (odd while a computation is in progress).
    begin_epoch: AtomicU64,
    /// The commit sequencer: serializes timestamp allocation, version
    /// stamping, and invalidation publishing.
    commit_lock: Mutex<()>,
    next_txn_id: AtomicU64,
    pins: Mutex<PinRegistry>,
    txns: TxnRegistry,
    bus: Mutex<InvalidationBus>,
    buffer: SharedBuffer,
    stats: AtomicDbStats,
    /// Engine latency histograms (`db.commit.us`, `db.query.us`,
    /// `db.vacuum.us`) plus anything future subsystems register.
    obs: Registry,
    /// Cached handles so the hot paths never touch the registry lock.
    commit_us: Arc<Histogram>,
    query_us: Arc<Histogram>,
    vacuum_us: Arc<Histogram>,
    /// Time commits spend waiting for WAL durability (zero for in-memory
    /// databases).
    fsync_us: Arc<Histogram>,
    /// Per-access-path planner decision counters (`db.plan.<path>`).
    plan_counters: PlanCounters,
    /// The write-ahead log, present only when the database was opened
    /// durably. Appends happen under the commit sequencer; durability waits
    /// happen with no locks held.
    durability: Option<Arc<WalLog>>,
    /// The directory holding the WAL and snapshot files.
    durable_dir: Option<PathBuf>,
    /// What recovery did to produce this database, if it was recovered.
    recovery: Option<RecoveryReport>,
    /// Snapshot files written over this database's lifetime.
    snapshots_written: AtomicU64,
    config: DbConfig,
    clock: SimClock,
}

impl Database {
    /// Creates an empty database.
    #[must_use]
    pub fn new(config: DbConfig, clock: SimClock) -> Database {
        let obs = Registry::new();
        let commit_us = obs.histogram("db.commit.us");
        let query_us = obs.histogram("db.query.us");
        let vacuum_us = obs.histogram("db.vacuum.us");
        let fsync_us = obs.histogram("db.fsync.us");
        let plan_counters = PlanCounters::new(&obs);
        Database {
            tables: RwLock::new(HashMap::new()),
            latest: AtomicU64::new(Timestamp::ZERO.0),
            vacuum_watermark: AtomicU64::new(Timestamp::ZERO.0),
            begin_epoch: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            next_txn_id: AtomicU64::new(1),
            pins: Mutex::new(PinRegistry::new()),
            txns: TxnRegistry::new(),
            bus: Mutex::new(InvalidationBus::new()),
            buffer: SharedBuffer::new(config.buffer_pages, SharedBuffer::DEFAULT_SHARDS),
            stats: AtomicDbStats::default(),
            obs,
            commit_us,
            query_us,
            vacuum_us,
            fsync_us,
            plan_counters,
            durability: None,
            durable_dir: None,
            recovery: None,
            snapshots_written: AtomicU64::new(0),
            config,
            clock,
        }
    }

    /// Creates a database with default configuration and a private clock;
    /// convenient in tests and examples.
    #[must_use]
    pub fn with_defaults() -> Database {
        Database::new(DbConfig::default(), SimClock::new())
    }

    /// The database's configuration.
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// The simulated clock this database records commit times against.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    // ------------------------------------------------------------------
    // Internal lookup helpers
    // ------------------------------------------------------------------

    /// Fetches a transaction's state handle, holding its registry shard lock
    /// only for the lookup.
    fn txn_handle(&self, token: TxnToken) -> Result<Arc<Mutex<Transaction>>> {
        self.txns
            .get(token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))
    }

    /// Extracts the owned transaction state from a handle removed from the
    /// registry. A transaction is driven by one thread, so the `Arc` is
    /// normally unique; if a stray clone exists the state is swapped out from
    /// under its mutex instead.
    fn into_transaction(handle: Arc<Mutex<Transaction>>) -> Transaction {
        match Arc::try_unwrap(handle) {
            Ok(mutex) => mutex.into_inner(),
            Err(arc) => std::mem::replace(
                &mut *arc.lock(),
                Transaction::new(0, TxnMode::ReadOnly, Timestamp::ZERO),
            ),
        }
    }

    fn latest_ts(&self) -> Timestamp {
        Timestamp(self.latest.load(Ordering::Acquire))
    }

    // ------------------------------------------------------------------
    // Schema management and bulk loading
    // ------------------------------------------------------------------

    /// Creates a table. On a durable database the schema is logged and
    /// fsynced before this returns, so a table acknowledged as created can
    /// never vanish in a crash.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let name = schema.name.clone();
        let table = Table::new(schema.clone(), self.config.rows_per_page)?;
        {
            let mut tables = self.tables.write();
            if tables.contains_key(&name) {
                return Err(Error::Schema(format!("table '{name}' already exists")));
            }
            tables.insert(name.clone(), TableShard::new(table));
        }
        if let Some(log) = &self.durability {
            let appended = {
                let _seq = self.commit_lock.lock();
                log.append(&encode_record(&WalRecord::CreateTable(schema)))
            };
            match appended.and_then(|lsn| log.wait_durable(lsn)) {
                Ok(()) => {}
                Err(e) => {
                    self.tables.write().remove(&name);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Returns the names of all tables.
    #[must_use]
    pub fn table_names(&self) -> Vec<String> {
        let tables = self.tables.read();
        let mut names: Vec<String> = tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Returns a copy of a table's schema.
    pub fn table_schema(&self, table: &str) -> Result<TableSchema> {
        let tables = self.tables.read();
        let shard = Self::shard_of(&tables, table)?;
        let guard = shard.read();
        Ok(guard.schema().clone())
    }

    /// Approximate size of a table's data in bytes.
    pub fn table_bytes(&self, table: &str) -> Result<usize> {
        let tables = self.tables.read();
        let shard = Self::shard_of(&tables, table)?;
        let guard = shard.read();
        Ok(guard.approx_bytes())
    }

    /// Approximate size of the whole database in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        let tables = self.tables.read();
        tables.values().map(|s| s.read().approx_bytes()).sum()
    }

    fn shard_of<'a>(
        tables: &'a HashMap<String, TableShard>,
        table: &str,
    ) -> Result<&'a TableShard> {
        tables
            .get(table)
            .ok_or_else(|| Error::Schema(format!("no table '{table}'")))
    }

    /// Loads rows directly as committed data, bypassing the transaction
    /// machinery. All rows loaded by one call become visible atomically at a
    /// single new commit timestamp and publish no invalidations; this is the
    /// initial-population path used by the data generators.
    pub fn bulk_load(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<Vec<u64>> {
        let wal_lsn;
        let mut row_ids = Vec::with_capacity(rows.len());
        {
            let tables = self.tables.read();
            let shard = Self::shard_of(&tables, table)?;
            let mut t = shard.write();
            let _seq = self.commit_lock.lock();
            let commit_ts = self.latest_ts().next();
            let mut ops = self
                .durability
                .as_ref()
                .map(|_| Vec::with_capacity(rows.len()));
            for values in rows {
                let row_id = t.allocate_row_id();
                if let Some(ops) = &mut ops {
                    ops.push(WalOp::Insert {
                        table: table.to_string(),
                        row_id,
                        values: values.clone(),
                        self_deleted: false,
                    });
                }
                t.insert_version(TupleVersion::committed(row_id, values, commit_ts))?;
                row_ids.push(row_id);
            }
            // Bulk loads are commits with no invalidation tags: they log
            // their rows but publish nothing, matching the in-memory path.
            wal_lsn = match (&self.durability, ops) {
                (Some(log), Some(ops)) => {
                    Some(log.append(&encode_record(&WalRecord::Commit(WalCommit {
                        commit_ts,
                        committed_at: self.clock.now(),
                        tags: TagSet::new(),
                        ops,
                    })))?)
                }
                _ => None,
            };
            self.latest.store(commit_ts.0, Ordering::Release);
        }
        if let (Some(log), Some(lsn)) = (&self.durability, wal_lsn) {
            log.wait_durable(lsn)?;
        }
        Ok(row_ids)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Registers a new transaction running at the latest committed snapshot
    /// without taking any global lock. The epoch re-check makes the
    /// registration atomic with respect to vacuum's horizon computation: if
    /// one overlapped, the registration is retried (vacuum may not have seen
    /// it, but the retried one begins at a snapshot the sweep retains).
    fn register_at_latest(&self, mode: TxnMode) -> TxnToken {
        let id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        loop {
            let epoch = self.begin_epoch.load(Ordering::SeqCst);
            if epoch % 2 == 1 {
                // A vacuum horizon computation is in flight; yield so it can
                // finish even on an oversubscribed or single-CPU host.
                std::thread::yield_now();
                continue;
            }
            let snapshot = self.latest_ts();
            self.txns.insert(
                id,
                Arc::new(Mutex::new(Transaction::new(id, mode, snapshot))),
            );
            if self.begin_epoch.load(Ordering::SeqCst) == epoch {
                return TxnToken(id);
            }
            self.txns.remove(id);
        }
    }

    /// Begins a read/write transaction at the latest committed snapshot.
    pub fn begin_rw(&self) -> Result<TxnToken> {
        Ok(self.register_at_latest(TxnMode::ReadWrite))
    }

    /// Begins a read-only transaction. With `snapshot = None` it runs at the
    /// latest committed state; with `Some(id)` it runs at that pinned
    /// snapshot (the paper's `BEGIN SNAPSHOTID` syntax).
    pub fn begin_ro(&self, snapshot: Option<SnapshotId>) -> Result<TxnToken> {
        let Some(snap) = snapshot else {
            return Ok(self.register_at_latest(TxnMode::ReadOnly));
        };
        // Holding the pin registry across the check and the registration
        // excludes vacuum (which needs the registry to compute its horizon),
        // so the pinned snapshot cannot be reclaimed in between.
        let pins = self.pins.lock();
        let ts = snap.timestamp();
        if !pins.is_pinned(ts) && ts != self.latest_ts() {
            return Err(Error::SnapshotUnavailable(format!(
                "snapshot {snap} is not pinned"
            )));
        }
        let id = self.next_txn_id.fetch_add(1, Ordering::Relaxed);
        self.txns.insert(
            id,
            Arc::new(Mutex::new(Transaction::new(id, TxnMode::ReadOnly, ts))),
        );
        drop(pins);
        Ok(TxnToken(id))
    }

    /// Commits a transaction. Read-only transactions simply return their
    /// snapshot timestamp; read/write transactions take the written tables'
    /// exclusive locks in sorted-name order, are assigned the next commit
    /// timestamp by the sequencer, have their versions stamped, and publish
    /// an invalidation message — all before the sequencer is released, so
    /// invalidations are delivered in commit-timestamp order.
    pub fn commit(&self, token: TxnToken) -> Result<Timestamp> {
        let t0 = Instant::now();
        let result = match self.commit_inner(token) {
            // The commit is stamped and published; wait for durability with
            // no database locks held, so concurrent commits pile into the
            // same group fsync.
            Ok((ts, Some(lsn))) => {
                let log = self.durability.as_ref().expect("lsn implies a wal").clone();
                let f0 = Instant::now();
                let wait = log.wait_durable(lsn);
                self.fsync_us.record(f0.elapsed().as_micros() as u64);
                wait.map(|()| ts)
            }
            Ok((ts, None)) => Ok(ts),
            Err(e) => Err(e),
        };
        self.commit_us.record(t0.elapsed().as_micros() as u64);
        result
    }

    fn commit_inner(&self, token: TxnToken) -> Result<(Timestamp, Option<u64>)> {
        let handle = self
            .txns
            .remove(token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        let tx = Self::into_transaction(handle);
        self.stats.commits.bump();
        if !tx.has_writes() {
            return Ok((tx.snapshot, None));
        }

        // Write locks on every touched table, in sorted-name order (the
        // deadlock-freedom rule).
        let tables = self.tables.read();
        let mut guards: Vec<(String, RwLockWriteGuard<'_, Table>)> = Vec::new();
        for name in tx.touched_tables() {
            if let Some(shard) = tables.get(&name) {
                let guard = shard.write();
                guards.push((name, guard));
            }
        }

        let _seq = self.commit_lock.lock();
        let commit_ts = self.latest_ts().next();

        // Stamp created and deleted versions with the commit timestamp.
        for (table, slot) in &tx.created_slots {
            if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                version.created = Stamp::Committed(commit_ts);
            }
        }
        for (table, slot) in &tx.deleted_slots {
            if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                if matches!(version.deleted, Some(Stamp::Pending(id)) if id == tx.id) {
                    version.deleted = Some(Stamp::Committed(commit_ts));
                }
            }
        }

        // Build the invalidation tag set, collapsing to wildcards for tables
        // with many modified rows. Built before `latest` advances because
        // the WAL record carries it: recovery rebuilds the invalidation
        // horizon from the same commit-ordered stream as the data.
        let mut tags = TagSet::new();
        if self.config.exec.track_validity {
            for tag in tx.pending_tags.iter() {
                let collapse = tx
                    .rows_modified
                    .get(&tag.table)
                    .is_some_and(|n| *n >= self.config.wildcard_threshold);
                if collapse {
                    tags.insert(InvalidationTag::wildcard(&tag.table));
                } else {
                    tags.insert(tag.clone());
                }
            }
        }
        let committed_at = self.clock.now();

        // Append to the WAL under the sequencer (log order = commit order)
        // before `latest` advances. If the append fails — only possible
        // after a simulated crash — the stamps are reverted so `commit_ts`
        // never leaks: the sequencer will hand the same timestamp to the
        // next commit, and a half-stamped transaction must not be visible.
        let mut wal_lsn = None;
        if let Some(log) = &self.durability {
            let mut ops = Vec::new();
            // Deletes first, so replay kills superseded versions before the
            // replacing inserts land.
            for (table, slot) in &tx.deleted_slots {
                if let Some(version) = Self::version_ref(&guards, table, *slot) {
                    if let Stamp::Committed(created_ts) = version.created {
                        if created_ts != commit_ts {
                            ops.push(WalOp::Delete {
                                table: table.clone(),
                                row_id: version.row_id,
                                created_ts,
                            });
                        }
                    }
                }
            }
            for (table, slot) in &tx.created_slots {
                if let Some(version) = Self::version_ref(&guards, table, *slot) {
                    ops.push(WalOp::Insert {
                        table: table.clone(),
                        row_id: version.row_id,
                        values: version.values.clone(),
                        self_deleted: matches!(
                            version.deleted,
                            Some(Stamp::Committed(ts)) if ts == commit_ts
                        ),
                    });
                }
            }
            let frame = encode_record(&WalRecord::Commit(WalCommit {
                commit_ts,
                committed_at,
                tags: tags.clone(),
                ops,
            }));
            match log.append(&frame) {
                Ok(lsn) => wal_lsn = Some(lsn),
                Err(e) => {
                    for (table, slot) in &tx.created_slots {
                        if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                            version.created = Stamp::Aborted;
                        }
                    }
                    for (table, slot) in &tx.deleted_slots {
                        if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                            if matches!(version.deleted, Some(Stamp::Committed(ts)) if ts == commit_ts)
                            {
                                version.deleted = None;
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }

        self.latest.store(commit_ts.0, Ordering::Release);

        // Publish before releasing the sequencer so the stream stays in
        // commit order.
        if self.config.exec.track_validity {
            let message = InvalidationMessage {
                timestamp: commit_ts,
                tags,
                committed_at,
            };
            self.bus.lock().publish(message);
            self.stats.invalidating_commits.bump();
        }
        Ok((commit_ts, wal_lsn))
    }

    /// Aborts a transaction, undoing any pending writes.
    pub fn abort(&self, token: TxnToken) -> Result<()> {
        let handle = self
            .txns
            .remove(token.0)
            .ok_or_else(|| Error::UnknownTransaction(format!("txn {}", token.0)))?;
        let tx = Self::into_transaction(handle);
        self.stats.aborts.bump();

        let tables = self.tables.read();
        let mut guards: Vec<(String, RwLockWriteGuard<'_, Table>)> = Vec::new();
        for name in tx.touched_tables() {
            if let Some(shard) = tables.get(&name) {
                let guard = shard.write();
                guards.push((name, guard));
            }
        }

        for (table, slot) in &tx.created_slots {
            if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                version.created = Stamp::Aborted;
            }
        }
        for (table, slot) in &tx.deleted_slots {
            if let Some(version) = Self::version_mut(&mut guards, table, *slot) {
                if matches!(version.deleted, Some(Stamp::Pending(id)) if id == tx.id) {
                    version.deleted = None;
                }
            }
        }
        Ok(())
    }

    /// Immutable version lookup under the already-held write guards; used to
    /// build WAL records after stamping.
    fn version_ref<'a, 'g>(
        guards: &'a [(String, RwLockWriteGuard<'g, Table>)],
        table: &str,
        slot: Slot,
    ) -> Option<&'a TupleVersion> {
        guards
            .iter()
            .find(|(name, _)| name == table)
            .and_then(|(_, guard)| guard.get(slot))
    }

    /// Looks up a version under the already-held write guards of a commit or
    /// abort.
    fn version_mut<'a, 'g>(
        guards: &'a mut [(String, RwLockWriteGuard<'g, Table>)],
        table: &str,
        slot: Slot,
    ) -> Option<&'a mut TupleVersion> {
        guards
            .iter_mut()
            .find(|(name, _)| name == table)
            .and_then(|(_, guard)| guard.get_mut(slot))
    }

    /// The latest committed timestamp.
    #[must_use]
    pub fn latest_timestamp(&self) -> Timestamp {
        self.latest_ts()
    }

    // ------------------------------------------------------------------
    // Pinned snapshots
    // ------------------------------------------------------------------

    /// Pins the latest committed snapshot (the `PIN` command) and returns its
    /// id together with the wall-clock time of the pin.
    pub fn pin_latest(&self) -> (SnapshotId, WallClock) {
        let mut pins = self.pins.lock();
        let id = pins.pin(self.latest_ts());
        self.stats.pins.bump();
        (id, self.clock.now())
    }

    /// Pins a specific snapshot timestamp; it must still be retained (i.e. at
    /// or after the current vacuum horizon).
    pub fn pin(&self, ts: Timestamp) -> Result<SnapshotId> {
        let mut pins = self.pins.lock();
        if ts > self.latest_ts() {
            return Err(Error::SnapshotUnavailable(format!(
                "timestamp {ts} is in the future"
            )));
        }
        if ts.0 < self.vacuum_watermark.load(Ordering::Acquire) {
            return Err(Error::SnapshotUnavailable(format!(
                "timestamp {ts} is below the vacuum horizon"
            )));
        }
        self.stats.pins.bump();
        Ok(pins.pin(ts))
    }

    /// Releases a pinned snapshot (the `UNPIN` command).
    pub fn unpin(&self, id: SnapshotId) -> Result<()> {
        self.stats.unpins.bump();
        self.pins.lock().unpin(id)
    }

    /// Currently pinned snapshot timestamps, oldest first.
    #[must_use]
    pub fn pinned_snapshots(&self) -> Vec<Timestamp> {
        self.pins.lock().pinned_timestamps()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Executes a SELECT query within a transaction. The result carries the
    /// validity interval and invalidation tags described in §5.2–§5.3.
    ///
    /// Queries take only *shared* table locks (in sorted-name order when a
    /// join touches two tables), so any number of them run in parallel.
    pub fn query(&self, token: TxnToken, query: &SelectQuery) -> Result<QueryResult> {
        let t0 = Instant::now();
        let result = self.query_inner(token, query);
        self.query_us.record(t0.elapsed().as_micros() as u64);
        result
    }

    /// Plans `query` without executing it, so tests and diagnostics can
    /// assert which access path a query takes (e.g. "no hot query plans a
    /// `SeqScan`"). Takes the same shared table locks as `query`.
    pub fn plan_for(&self, query: &SelectQuery) -> Result<QueryPlan> {
        let tables = self.tables.read();
        let outer_shard = Self::shard_of(&tables, &query.table)?;
        match &query.join {
            Some(join) if join.table != query.table => {
                let inner_shard = Self::shard_of(&tables, &join.table)?;
                let outer_first = query.table <= join.table;
                let (first, second) = if outer_first {
                    (outer_shard, inner_shard)
                } else {
                    (inner_shard, outer_shard)
                };
                let g1 = first.read();
                let g2 = second.read();
                let (outer_t, inner_t): (&Table, &Table) =
                    if outer_first { (&g1, &g2) } else { (&g2, &g1) };
                plan_query(query, outer_t, Some(inner_t))
            }
            Some(_) => {
                let guard = outer_shard.read();
                plan_query(query, &guard, Some(&guard))
            }
            None => {
                let guard = outer_shard.read();
                plan_query(query, &guard, None)
            }
        }
    }

    fn query_inner(&self, token: TxnToken, query: &SelectQuery) -> Result<QueryResult> {
        let (snapshot, me) = {
            let handle = self.txn_handle(token)?;
            let tx = handle.lock();
            (tx.snapshot, Some(tx.id))
        };

        let tables = self.tables.read();
        let outer_shard = Self::shard_of(&tables, &query.table)?;
        let result = match &query.join {
            Some(join) if join.table != query.table => {
                let inner_shard = Self::shard_of(&tables, &join.table)?;
                // Shared locks in sorted table-name order (lock-order rule).
                let outer_first = query.table <= join.table;
                let (first, second) = if outer_first {
                    (outer_shard, inner_shard)
                } else {
                    (inner_shard, outer_shard)
                };
                let g1 = first.read();
                let g2 = second.read();
                let (outer_t, inner_t): (&Table, &Table) =
                    if outer_first { (&g1, &g2) } else { (&g2, &g1) };
                let plan = plan_query(query, outer_t, Some(inner_t))?;
                self.plan_counters.bump(&plan.access);
                execute_plan(
                    &plan,
                    outer_t,
                    Some(inner_t),
                    snapshot,
                    me,
                    &self.buffer,
                    &self.config.exec,
                )?
            }
            Some(_) => {
                // Self-join: one shared lock serves both sides.
                let guard = outer_shard.read();
                let plan = plan_query(query, &guard, Some(&guard))?;
                self.plan_counters.bump(&plan.access);
                execute_plan(
                    &plan,
                    &guard,
                    Some(&guard),
                    snapshot,
                    me,
                    &self.buffer,
                    &self.config.exec,
                )?
            }
            None => {
                let guard = outer_shard.read();
                let plan = plan_query(query, &guard, None)?;
                self.plan_counters.bump(&plan.access);
                execute_plan(
                    &plan,
                    &guard,
                    None,
                    snapshot,
                    me,
                    &self.buffer,
                    &self.config.exec,
                )?
            }
        };
        self.stats.queries.bump();
        Ok(result)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Copies the identifying fields of a transaction and checks it may
    /// write.
    fn writable_txn_info(handle: &Arc<Mutex<Transaction>>) -> Result<(TxnId, Timestamp)> {
        let tx = handle.lock();
        if tx.mode != TxnMode::ReadWrite {
            return Err(Error::InvalidState(
                "write attempted in a read-only transaction".into(),
            ));
        }
        Ok((tx.id, tx.snapshot))
    }

    /// Inserts a row in a read/write transaction. Returns the new row id.
    pub fn insert(&self, token: TxnToken, table: &str, values: Vec<Value>) -> Result<u64> {
        let handle = self.txn_handle(token)?;
        let (txid, _) = Self::writable_txn_info(&handle)?;
        let tables = self.tables.read();
        let shard = Self::shard_of(&tables, table)?;
        let mut t = shard.write();
        let row_id = t.allocate_row_id();
        let version = TupleVersion::pending(row_id, values.clone(), txid);
        let slot = t.insert_version(version)?;
        let mut tx = handle.lock();
        Self::collect_tags_for_values(&t, &values, &mut tx.pending_tags);
        tx.created_slots.push((table.to_string(), slot));
        tx.written_rows.push((table.to_string(), row_id));
        tx.note_row_modified(table);
        drop(tx);
        self.stats.inserts.bump();
        Ok(row_id)
    }

    /// Updates all rows of `table` matching `predicate`, applying the
    /// `assignments` (column, new value) list. Returns the number of rows
    /// updated.
    pub fn update(
        &self,
        token: TxnToken,
        table: &str,
        predicate: &Predicate,
        assignments: &[(String, Value)],
    ) -> Result<usize> {
        let handle = self.txn_handle(token)?;
        let (txid, snapshot) = Self::writable_txn_info(&handle)?;
        let tables = self.tables.read();
        let shard = Self::shard_of(&tables, table)?;
        let mut t = shard.write();

        let targets = Self::visible_matching_slots(&t, predicate, snapshot, txid, &self.buffer)?;
        let mut updated = 0;
        let mut tx = handle.lock();
        for slot in targets {
            self.checked_write_conflict(&t, slot, snapshot, txid)?;
            let old_version = t
                .get(slot)
                .ok_or_else(|| Error::Query("target row vanished".into()))?;
            let row_id = old_version.row_id;
            let mut new_values = old_version.values.clone();
            let old_values = old_version.values.clone();
            for (column, value) in assignments {
                let idx = t.schema().column_index(column)?;
                new_values[idx] = value.clone();
            }
            // Mark the old version deleted and insert the new one.
            if let Some(v) = t.get_mut(slot) {
                v.deleted = Some(Stamp::Pending(txid));
            }
            let new_slot =
                t.insert_version(TupleVersion::pending(row_id, new_values.clone(), txid))?;
            Self::collect_tags_for_values(&t, &old_values, &mut tx.pending_tags);
            Self::collect_tags_for_values(&t, &new_values, &mut tx.pending_tags);
            tx.deleted_slots.push((table.to_string(), slot));
            tx.created_slots.push((table.to_string(), new_slot));
            tx.written_rows.push((table.to_string(), row_id));
            tx.note_row_modified(table);
            updated += 1;
        }
        drop(tx);
        self.stats.updates.add(updated as u64);
        Ok(updated)
    }

    /// Deletes all rows of `table` matching `predicate`. Returns the number
    /// of rows deleted.
    pub fn delete(&self, token: TxnToken, table: &str, predicate: &Predicate) -> Result<usize> {
        let handle = self.txn_handle(token)?;
        let (txid, snapshot) = Self::writable_txn_info(&handle)?;
        let tables = self.tables.read();
        let shard = Self::shard_of(&tables, table)?;
        let mut t = shard.write();

        let targets = Self::visible_matching_slots(&t, predicate, snapshot, txid, &self.buffer)?;
        let mut deleted = 0;
        let mut tx = handle.lock();
        for slot in targets {
            self.checked_write_conflict(&t, slot, snapshot, txid)?;
            let values = t
                .get(slot)
                .map(|v| v.values.clone())
                .ok_or_else(|| Error::Query("target row vanished".into()))?;
            let row_id = t.get(slot).map(|v| v.row_id).unwrap_or_default();
            if let Some(v) = t.get_mut(slot) {
                v.deleted = Some(Stamp::Pending(txid));
            }
            Self::collect_tags_for_values(&t, &values, &mut tx.pending_tags);
            tx.deleted_slots.push((table.to_string(), slot));
            tx.written_rows.push((table.to_string(), row_id));
            tx.note_row_modified(table);
            deleted += 1;
        }
        drop(tx);
        self.stats.deletes.add(deleted as u64);
        Ok(deleted)
    }

    // ------------------------------------------------------------------
    // Invalidations, vacuum, statistics
    // ------------------------------------------------------------------

    /// Subscribes to the invalidation stream. Each committed read/write
    /// transaction produces one message, delivered in commit order.
    pub fn subscribe_invalidations(&self) -> Receiver<InvalidationMessage> {
        self.bus.lock().subscribe()
    }

    /// The ordered log of all invalidation messages published so far.
    #[must_use]
    pub fn invalidation_log(&self) -> Vec<InvalidationMessage> {
        self.bus.lock().log().to_vec()
    }

    /// Reclaims tuple versions that are invisible to every pinned snapshot
    /// and every active transaction. Returns the number of versions removed.
    ///
    /// The horizon is computed atomically against the sequencer, pins, and
    /// transaction registry (with the begin epoch odd so lock-free begins
    /// retry), then recorded as the vacuum watermark — pins below it are
    /// refused from then on — before tables are swept one at a time.
    pub fn vacuum(&self) -> usize {
        let t0 = Instant::now();
        let removed = self.vacuum_inner();
        self.vacuum_us.record(t0.elapsed().as_micros() as u64);
        removed
    }

    fn vacuum_inner(&self) -> usize {
        let horizon = {
            let _seq = self.commit_lock.lock();
            let _pins = self.pins.lock();
            self.begin_epoch.fetch_add(1, Ordering::SeqCst);
            let mut horizon = _pins.horizon(self.latest_ts());
            if let Some(min) = self.txns.min_snapshot() {
                horizon = horizon.min(min);
            }
            let previous = self.vacuum_watermark.load(Ordering::Acquire);
            let watermark = previous.max(horizon.0);
            self.vacuum_watermark.store(watermark, Ordering::Release);
            self.begin_epoch.fetch_add(1, Ordering::SeqCst);
            // Log the advanced watermark (still under the sequencer) so a
            // recovered database keeps refusing pins below it. No durability
            // wait: losing the record in a crash just replays the older,
            // more permissive watermark, which is safe because replay also
            // reconstructs the swept versions.
            if watermark > previous {
                if let Some(log) = &self.durability {
                    let _ = log.append(&encode_record(&WalRecord::VacuumWatermark(Timestamp(
                        watermark,
                    ))));
                }
            }
            horizon
        };

        let tables = self.tables.read();
        let mut removed = 0;
        for shard in tables.values() {
            let mut table = shard.write();
            let garbage: Vec<Slot> = table
                .scan_slots()
                .filter(|slot| {
                    table
                        .get(*slot)
                        .is_some_and(|v| v.is_garbage_before(horizon))
                })
                .collect();
            for slot in garbage {
                table.remove_slot(slot);
                removed += 1;
            }
        }
        self.stats.vacuumed_versions.add(removed as u64);
        removed
    }

    /// Buffer-pool statistics (simulated page hits and misses).
    #[must_use]
    pub fn buffer_stats(&self) -> BufferStats {
        self.buffer.stats()
    }

    /// Resets the buffer-pool statistics (keeps the pool warm).
    pub fn reset_buffer_stats(&self) {
        self.buffer.reset_stats();
    }

    /// Database operation counters.
    #[must_use]
    pub fn stats(&self) -> DbStats {
        let mut stats = self.stats.snapshot();
        if let Some(log) = &self.durability {
            stats.wal_appends = log.appends();
            stats.wal_fsyncs = log.fsyncs();
        }
        stats.snapshots_written = self.snapshots_written.load(Ordering::Relaxed);
        stats
    }

    /// The engine's latency metrics: `db.commit.us`, `db.query.us`, and
    /// `db.vacuum.us` histograms (microseconds, mergeable log2 buckets).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Per-table lock-contention counters, sorted by table name. A rising
    /// wait fraction on a shard is the early-warning signal that the
    /// workload has outgrown that table's reader/writer lock.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let tables = self.tables.read();
        let mut out: Vec<ShardStats> = tables
            .iter()
            .map(|(name, shard)| shard.stats(name))
            .collect();
        out.sort_by(|a, b| a.table.cmp(&b.table));
        out
    }

    /// Resets the per-table lock counters, so a measurement window (e.g.
    /// after benchmark warmup) excludes load and warmup activity.
    pub fn reset_shard_stats(&self) {
        let tables = self.tables.read();
        for shard in tables.values() {
            shard.reset_stats();
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Finds the slots of versions visible to (`snapshot`, `txid`) that match
    /// `predicate`, using an index when the predicate allows it.
    fn visible_matching_slots(
        table: &Table,
        predicate: &Predicate,
        snapshot: Timestamp,
        txid: TxnId,
        buffer: &SharedBuffer,
    ) -> Result<Vec<Slot>> {
        let access = choose_access_path(predicate, table);
        let candidates: Vec<Slot> = match &access {
            AccessPath::IndexEq { column, value } => {
                buffer.access(
                    &format!("{}#idx:{}", table.schema().name, column),
                    table.index_page_of(column, value),
                );
                table.index_eq(column, value)?
            }
            AccessPath::IndexIn { column, values } => {
                let mut slots = Vec::new();
                for value in values {
                    buffer.access(
                        &format!("{}#idx:{}", table.schema().name, column),
                        table.index_page_of(column, value),
                    );
                    slots.extend(table.index_eq(column, value)?);
                }
                slots.sort_unstable();
                slots.dedup();
                slots
            }
            AccessPath::IndexRange { column, lo, hi }
            | AccessPath::IndexOrdered { column, lo, hi, .. }
            | AccessPath::IndexEndpoint { column, lo, hi, .. } => {
                table.index_range(column, lo.as_ref(), hi.as_ref())?
            }
            AccessPath::SeqScan => table.scan_slots().collect(),
        };
        let mut out = Vec::new();
        for slot in candidates {
            let Some(version) = table.get(slot) else {
                continue;
            };
            buffer.access(&table.schema().name, table.heap_page_of(slot));
            if version.visible_to(snapshot, Some(txid))
                && predicate.eval(table.schema(), &version.values)?
            {
                out.push(slot);
            }
        }
        Ok(out)
    }

    /// Runs the first-updater-wins conflict check, counting detected
    /// serialization failures.
    fn checked_write_conflict(
        &self,
        table: &Table,
        slot: Slot,
        snapshot: Timestamp,
        txid: TxnId,
    ) -> Result<()> {
        let result = Self::check_write_conflict(table, slot, snapshot, txid);
        if matches!(result, Err(Error::SerializationFailure(_))) {
            self.stats.serialization_failures.bump();
        }
        result
    }

    /// Eager first-updater-wins conflict detection: fail if any other
    /// transaction has a pending write on the row, or if a newer committed
    /// version exists than the writer's snapshot.
    fn check_write_conflict(
        table: &Table,
        slot: Slot,
        snapshot: Timestamp,
        txid: TxnId,
    ) -> Result<()> {
        let Some(version) = table.get(slot) else {
            return Ok(());
        };
        for other_slot in table.versions_of_row(version.row_id) {
            let Some(v) = table.get(*other_slot) else {
                continue;
            };
            let pending_by_other = matches!(v.created, Stamp::Pending(id) if id != txid)
                || matches!(v.deleted, Some(Stamp::Pending(id)) if id != txid);
            if pending_by_other {
                return Err(Error::SerializationFailure(format!(
                    "row {} in '{}' has an uncommitted change from another transaction",
                    version.row_id,
                    table.schema().name
                )));
            }
            let newer_commit = v.created.committed_at().is_some_and(|ts| ts > snapshot)
                || v.deleted
                    .and_then(|s| s.committed_at())
                    .is_some_and(|ts| ts > snapshot);
            if newer_commit {
                return Err(Error::SerializationFailure(format!(
                    "row {} in '{}' was modified after this transaction's snapshot",
                    version.row_id,
                    table.schema().name
                )));
            }
        }
        Ok(())
    }

    /// Adds one keyed tag per index of `table` for the given row values
    /// ("each tuple added, deleted, or modified yields one invalidation tag
    /// for each index it is listed in", §5.3).
    fn collect_tags_for_values(table: &Table, values: &[Value], tags: &mut TagSet) {
        for index in &table.schema().indexes {
            if let Ok(idx) = table.schema().column_index(&index.column) {
                let value = &values[idx];
                if !value.is_null() {
                    tags.insert(InvalidationTag::keyed(
                        &table.schema().name,
                        format!("{}={}", index.column, value.render_key()),
                    ));
                }
            }
        }
    }
}

/// Convenience bundle returned by [`Database::query_ro_once`]: the result of
/// a single query run in its own read-only transaction.
#[derive(Debug, Clone)]
pub struct OneShotQuery {
    /// The query result (rows, validity, tags, page counts).
    pub result: QueryResult,
    /// The snapshot the query ran at.
    pub snapshot: Timestamp,
}

impl Database {
    /// Runs one query in a fresh read-only transaction at the latest
    /// snapshot. Convenient for tests and tools; the TxCache library manages
    /// its transactions explicitly instead.
    pub fn query_ro_once(&self, query: &SelectQuery) -> Result<OneShotQuery> {
        let token = self.begin_ro(None)?;
        let result = self.query(token, query);
        let snapshot = self.commit(token)?;
        Ok(OneShotQuery {
            result: result?,
            snapshot,
        })
    }
}

// ----------------------------------------------------------------------
// Durability: recovery, snapshots, crash simulation
// ----------------------------------------------------------------------

impl Database {
    /// Opens (creating if necessary) a durable database in `dir`: loads the
    /// newest valid snapshot, replays the WAL tail, truncates any torn
    /// tail, and attaches a write-ahead log with the configured fsync
    /// policy. On an empty directory this is a durable cold start.
    pub fn open_durable(
        dir: impl AsRef<Path>,
        config: DbConfig,
        clock: SimClock,
    ) -> Result<Database> {
        Self::recover(dir, config, clock)
    }

    /// Recovers a durable database from `dir`. See
    /// [`Database::recovery_report`] for what was found.
    pub fn recover(dir: impl AsRef<Path>, config: DbConfig, clock: SimClock) -> Result<Database> {
        Self::recover_with(dir, config, clock, RecoverOptions::default())
    }

    /// [`Database::recover`] with fault-injection knobs (test-only).
    pub fn recover_with(
        dir: impl AsRef<Path>,
        config: DbConfig,
        clock: SimClock,
        opts: RecoverOptions,
    ) -> Result<Database> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| Error::Serialization(format!("recover io (mkdir): {e}")))?;
        let loaded = wal::load_dir(dir)?;
        let mut db = Database::new(config, clock);

        let mut latest = Timestamp::ZERO;
        let mut watermark = Timestamp::ZERO;
        let mut invalidations: Vec<InvalidationMessage> = Vec::new();
        let snapshot_ts = loaded.snapshot.as_ref().map(|s| s.snapshot_ts);

        if let Some(image) = &loaded.snapshot {
            latest = image.snapshot_ts;
            watermark = image.vacuum_watermark;
            invalidations = image.invalidations.clone();
            let mut tables = db.tables.write();
            for snap_table in &image.tables {
                let mut table = Table::new(snap_table.schema.clone(), config.rows_per_page)?;
                for v in &snap_table.versions {
                    let mut version =
                        TupleVersion::committed(v.row_id, v.values.clone(), v.created_ts);
                    version.deleted = v.deleted_ts.map(Stamp::Committed);
                    table.insert_version(version)?;
                }
                table.ensure_next_row_id(snap_table.next_row_id);
                tables.insert(snap_table.schema.name.clone(), TableShard::new(table));
            }
        }

        let mut replayed = 0usize;
        let mut skipped = 0usize;
        {
            let mut tables = db.tables.write();
            for record in &loaded.records {
                match record {
                    WalRecord::CreateTable(schema) => {
                        // Compaction drops CreateTable records once a
                        // snapshot carries the schema, so a surviving record
                        // may duplicate a snapshot table: create only if
                        // missing.
                        if !tables.contains_key(&schema.name) {
                            tables.insert(
                                schema.name.clone(),
                                TableShard::new(Table::new(schema.clone(), config.rows_per_page)?),
                            );
                        }
                    }
                    WalRecord::VacuumWatermark(ts) => watermark = watermark.max(*ts),
                    WalRecord::Commit(c) => {
                        if snapshot_ts.is_some_and(|s| c.commit_ts <= s) {
                            skipped += 1;
                            continue;
                        }
                        Self::apply_replayed_commit(&tables, c)?;
                        latest = latest.max(c.commit_ts);
                        if !c.tags.is_empty() {
                            invalidations.push(InvalidationMessage {
                                timestamp: c.commit_ts,
                                tags: c.tags.clone(),
                                committed_at: c.committed_at,
                            });
                        }
                        replayed += 1;
                    }
                }
            }
        }

        db.latest.store(latest.0, Ordering::Release);
        db.vacuum_watermark.store(watermark.0, Ordering::Release);
        if !opts.skip_horizon_rebuild_for_fault_injection {
            db.bus.lock().restore(invalidations);
        }

        let log = WalLog::open(dir, config.fsync, loaded.wal_valid_len)?;
        db.durability = Some(Arc::new(log));
        db.durable_dir = Some(dir.to_path_buf());
        db.recovery = Some(RecoveryReport {
            snapshot_ts,
            snapshots_skipped: loaded.snapshots_skipped,
            replayed_commits: replayed,
            skipped_commits: skipped,
            truncated_bytes: loaded.truncated_bytes,
            recovered_latest: latest,
            recovered_watermark: watermark,
        });
        Ok(db)
    }

    /// Applies one replayed WAL commit: deletes first (so superseded
    /// versions die before their replacements land), then inserts.
    fn apply_replayed_commit(tables: &HashMap<String, TableShard>, c: &WalCommit) -> Result<()> {
        for op in &c.ops {
            if let WalOp::Delete {
                table,
                row_id,
                created_ts,
            } = op
            {
                let shard = Self::shard_of(tables, table)?;
                let mut t = shard.write();
                let slots: Vec<Slot> = t.versions_of_row(*row_id).to_vec();
                let target = slots.into_iter().find(|&slot| {
                    t.get(slot).is_some_and(|v| {
                        matches!(v.created, Stamp::Committed(ts) if ts == *created_ts)
                            && v.deleted.is_none()
                    })
                });
                if let Some(slot) = target {
                    if let Some(v) = t.get_mut(slot) {
                        v.deleted = Some(Stamp::Committed(c.commit_ts));
                    }
                }
            }
        }
        for op in &c.ops {
            if let WalOp::Insert {
                table,
                row_id,
                values,
                self_deleted,
            } = op
            {
                let shard = Self::shard_of(tables, table)?;
                let mut t = shard.write();
                let mut version = TupleVersion::committed(*row_id, values.clone(), c.commit_ts);
                if *self_deleted {
                    version.deleted = Some(Stamp::Committed(c.commit_ts));
                }
                t.insert_version(version)?;
                t.ensure_next_row_id(*row_id + 1);
            }
        }
        Ok(())
    }

    /// Whether this database carries a write-ahead log.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The directory holding this database's WAL and snapshots, if durable.
    #[must_use]
    pub fn durable_dir(&self) -> Option<&Path> {
        self.durable_dir.as_deref()
    }

    /// What recovery did to produce this database, if it was recovered.
    #[must_use]
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Bytes currently in the write-ahead log (zero when in-memory). The
    /// background snapshotter uses this as its compaction trigger.
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.durability.as_ref().map_or(0, |log| log.written_len())
    }

    /// The timestamp of the newest invalidation the bus has seen — after
    /// recovery, the horizon reconnecting caches seal their unbounded
    /// entries at.
    #[must_use]
    pub fn invalidation_horizon(&self) -> Option<Timestamp> {
        self.bus.lock().last_timestamp()
    }

    /// Arms a test-only crash point on the WAL; the next operation reaching
    /// that stage simulates power loss.
    pub fn set_crash_point(&self, point: CrashPoint) {
        if let Some(log) = &self.durability {
            log.arm_crash_point(point);
        }
    }

    /// Pulls the plug (test-only): un-fsynced WAL bytes are discarded and
    /// every subsequent durable operation fails. The in-memory state is left
    /// as-is but unreachable through any durable path — recover from the
    /// directory to get the survivor's view.
    pub fn simulate_crash(&self) {
        if let Some(log) = &self.durability {
            log.crash();
        }
    }

    /// True once a simulated crash has fired.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.durability.as_ref().is_some_and(|log| log.is_crashed())
    }

    /// Writes a snapshot of the current committed state (version store +
    /// invalidation horizon) and compacts the WAL down to the records the
    /// snapshot does not cover. Returns the snapshot file path.
    ///
    /// The capture is consistent at a single timestamp without blocking
    /// writers: the timestamp is fixed under the commit sequencer, then
    /// tables are walked one at a time under shared locks, including only
    /// versions committed at or before it.
    pub fn snapshot_now(&self) -> Result<PathBuf> {
        let log = self
            .durability
            .as_ref()
            .ok_or_else(|| Error::InvalidState("snapshot_now on a non-durable database".into()))?
            .clone();
        if log.is_crashed() {
            return Err(crashed_err());
        }
        let dir = self.durable_dir.as_ref().expect("durable dir").clone();

        let (snap_ts, watermark) = {
            let _seq = self.commit_lock.lock();
            (
                self.latest_ts(),
                Timestamp(self.vacuum_watermark.load(Ordering::Acquire)),
            )
        };
        let invalidations: Vec<InvalidationMessage> = self
            .bus
            .lock()
            .log()
            .iter()
            .filter(|m| m.timestamp <= snap_ts)
            .cloned()
            .collect();

        let mut image_tables = Vec::new();
        {
            let tables = self.tables.read();
            let mut names: Vec<&String> = tables.keys().collect();
            names.sort();
            for name in names {
                let t = tables[name].read();
                let mut versions = Vec::new();
                for slot in t.scan_slots() {
                    let Some(v) = t.get(slot) else { continue };
                    // Pending and aborted stamps never reach disk: the
                    // snapshot is consistent as of `snap_ts`.
                    let Stamp::Committed(created_ts) = v.created else {
                        continue;
                    };
                    if created_ts > snap_ts {
                        continue;
                    }
                    let deleted_ts = match v.deleted {
                        Some(Stamp::Committed(ts)) if ts <= snap_ts => Some(ts),
                        _ => None,
                    };
                    versions.push(SnapshotVersion {
                        row_id: v.row_id,
                        created_ts,
                        deleted_ts,
                        values: v.values.clone(),
                    });
                }
                image_tables.push(SnapshotTable {
                    schema: t.schema().clone(),
                    next_row_id: t.next_row_id(),
                    versions,
                });
            }
        }
        let image = SnapshotImage {
            snapshot_ts: snap_ts,
            vacuum_watermark: watermark,
            invalidations,
            tables: image_tables,
        };

        let crash_mid = log.take_crash_point(CrashPoint::MidSnapshot);
        let written = snapshot_file::write_snapshot(&dir, &image, crash_mid);
        if crash_mid {
            log.crash();
            return Err(crashed_err());
        }
        let path = written?;
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
        if log.take_crash_point(CrashPoint::PostSnapshotPreTruncate) {
            log.crash();
            return Err(crashed_err());
        }

        // Rotate first, then compact — and compact only down to the *oldest
        // retained* snapshot, not the one just written. Recovery falls back
        // past a corrupt newest snapshot to the older one, so the WAL must
        // keep every record the fallback does not cover; compacting to the
        // new snapshot's timestamp would leave that fallback with a hole
        // (commits between the two snapshots) it could never fill.
        let _ = snapshot_file::prune_snapshots(&dir, 2);
        let mut floor_ts = snap_ts;
        let mut floor_tables: Vec<String> =
            image.tables.iter().map(|t| t.schema.name.clone()).collect();
        let mut floor_watermark = watermark;
        if let Ok(retained) = snapshot_file::list_snapshots(&dir) {
            if let Some((older_ts, older_path)) = retained.last().filter(|(ts, _)| *ts < snap_ts) {
                // Re-reading verifies the fallback end to end; a corrupt
                // fallback snapshot buys nothing, so drop it and keep the
                // floor at the snapshot just written.
                match snapshot_file::read_snapshot(older_path) {
                    Ok(older) => {
                        floor_ts = *older_ts;
                        floor_tables = older.tables.iter().map(|t| t.schema.name.clone()).collect();
                        floor_watermark = older.vacuum_watermark;
                    }
                    Err(_) => {
                        let _ = std::fs::remove_file(older_path);
                    }
                }
            }
        }

        // Compact the WAL down to what the floor snapshot does not cover.
        // Under the sequencer so no append interleaves with the rewrite.
        {
            let _seq = self.commit_lock.lock();
            let bytes = std::fs::read(dir.join(wal::WAL_FILE))
                .map_err(|e| Error::Serialization(format!("wal io (compact read): {e}")))?;
            let scan = scan_wal(&bytes)?;
            let mut kept = Vec::new();
            for record in &scan.records {
                let keep = match record {
                    WalRecord::Commit(c) => c.commit_ts > floor_ts,
                    WalRecord::CreateTable(schema) => !floor_tables.contains(&schema.name),
                    WalRecord::VacuumWatermark(ts) => *ts > floor_watermark,
                };
                if keep {
                    kept.extend_from_slice(&encode_record(record));
                }
            }
            log.compact_to(&kept)?;
        }
        Ok(path)
    }

    /// A deterministic digest of the committed state: `latest`, the vacuum
    /// watermark, every table's schema and committed versions, and the
    /// invalidation horizon. Two databases with equal digests are
    /// indistinguishable to clients; used to assert recovery idempotence.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv1a(&mut h, &self.latest_ts().0.to_le_bytes());
        fnv1a(
            &mut h,
            &self.vacuum_watermark.load(Ordering::Acquire).to_le_bytes(),
        );
        let tables = self.tables.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for name in names {
            let t = tables[name].read();
            fnv1a(&mut h, name.as_bytes());
            fnv1a(&mut h, format!("{:?}", t.schema()).as_bytes());
            fnv1a(&mut h, &t.next_row_id().to_le_bytes());
            let mut versions: Vec<(u64, u64, u64, String)> = t
                .scan_slots()
                .filter_map(|slot| t.get(slot))
                .filter_map(|v| {
                    let Stamp::Committed(created) = v.created else {
                        return None;
                    };
                    let deleted = match v.deleted {
                        Some(Stamp::Committed(ts)) => ts.0,
                        _ => u64::MAX,
                    };
                    let rendered = v
                        .values
                        .iter()
                        .map(Value::render_key)
                        .collect::<Vec<_>>()
                        .join("\u{1f}");
                    Some((v.row_id, created.0, deleted, rendered))
                })
                .collect();
            versions.sort();
            for (row_id, created, deleted, rendered) in versions {
                fnv1a(&mut h, &row_id.to_le_bytes());
                fnv1a(&mut h, &created.to_le_bytes());
                fnv1a(&mut h, &deleted.to_le_bytes());
                fnv1a(&mut h, rendered.as_bytes());
            }
        }
        drop(tables);
        let bus = self.bus.lock();
        fnv1a(&mut h, &(bus.log().len() as u64).to_le_bytes());
        fnv1a(
            &mut h,
            &bus.last_timestamp()
                .unwrap_or(Timestamp::ZERO)
                .0
                .to_le_bytes(),
        );
        h
    }
}

/// Handle to a background snapshotter thread; signals it to stop and joins
/// it on drop (or via [`Snapshotter::stop`]).
pub struct Snapshotter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Snapshotter {
    /// Stops the snapshotter and waits for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Snapshotter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the background snapshotter: every `poll` interval it checks the
/// WAL's size, and once it reaches `wal_bytes_threshold` writes a snapshot
/// and compacts the log (the `aof_writer`/`spldb_saver` split: appends keep
/// flowing while compaction runs in the background). Snapshot errors are
/// swallowed — a failed background snapshot only means a longer replay.
pub fn spawn_snapshotter(
    db: &Arc<Database>,
    wal_bytes_threshold: u64,
    poll: Duration,
) -> Snapshotter {
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let thread_db = Arc::clone(db);
    let handle = std::thread::spawn(move || {
        while !thread_stop.load(Ordering::Acquire) {
            if thread_db.is_crashed() {
                break;
            }
            if thread_db.wal_bytes() >= wal_bytes_threshold {
                let _ = thread_db.snapshot_now();
            }
            std::thread::sleep(poll);
        }
    });
    Snapshotter {
        stop,
        handle: Some(handle),
    }
}

#[allow(dead_code)]
fn assert_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Database>();
    check::<QueryResult>();
    check::<PageCounts>();
    check::<ValidityInterval>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Aggregate, CmpOp};
    use crate::value::ColumnType;

    fn users_schema() -> TableSchema {
        TableSchema::new("users")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Text)
            .column("rating", ColumnType::Int)
            .unique_index("id")
            .index("name")
    }

    fn setup() -> Database {
        let db = Database::with_defaults();
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            (1..=10i64)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::text(format!("user{i}")),
                        Value::Int(0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        db
    }

    #[test]
    fn plan_counters_and_plan_for_track_access_paths() {
        let db = setup();
        let eq = SelectQuery::table("users").filter(Predicate::eq("id", 3i64));
        let inl = SelectQuery::table("users").filter(Predicate::in_list("id", [1i64, 2]));
        let ordered = SelectQuery::table("users")
            .order_by("id", crate::query::SortOrder::Desc)
            .limit(3);
        let endpoint = SelectQuery::table("users").aggregate(Aggregate::Max("id".into()));
        let scan = SelectQuery::table("users").filter(Predicate::eq("rating", 0i64));

        assert!(matches!(
            db.plan_for(&eq).unwrap().access,
            AccessPath::IndexEq { .. }
        ));
        assert!(matches!(
            db.plan_for(&inl).unwrap().access,
            AccessPath::IndexIn { .. }
        ));
        assert!(matches!(
            db.plan_for(&ordered).unwrap().access,
            AccessPath::IndexOrdered { .. }
        ));
        assert!(matches!(
            db.plan_for(&endpoint).unwrap().access,
            AccessPath::IndexEndpoint { .. }
        ));
        assert!(matches!(
            db.plan_for(&scan).unwrap().access,
            AccessPath::SeqScan
        ));

        for q in [&eq, &inl, &ordered, &endpoint, &scan] {
            db.query_ro_once(q).unwrap();
        }
        let m = db.metrics();
        for name in [
            "db.plan.index_eq",
            "db.plan.index_in",
            "db.plan.index_ordered",
            "db.plan.index_endpoint",
            "db.plan.seq_scan",
        ] {
            assert_eq!(m.counter(name), Some(1), "{name}");
        }
    }

    #[test]
    fn create_table_rejects_duplicates() {
        let db = Database::with_defaults();
        db.create_table(users_schema()).unwrap();
        assert!(db.create_table(users_schema()).is_err());
        assert_eq!(db.table_names(), vec!["users".to_string()]);
        assert!(db.table_schema("users").is_ok());
        assert!(db.table_schema("missing").is_err());
    }

    #[test]
    fn bulk_load_is_one_commit_and_visible() {
        let db = setup();
        assert_eq!(db.latest_timestamp(), Timestamp(1));
        let q = SelectQuery::table("users").aggregate(Aggregate::Count);
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.get(0, "count").unwrap(), &Value::Int(10));
        assert!(db.total_bytes() > 0);
        assert!(db.table_bytes("users").unwrap() > 0);
    }

    #[test]
    fn insert_commit_and_query_with_validity() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        db.insert(
            tx,
            "users",
            vec![Value::Int(11), Value::text("user11"), Value::Int(0)],
        )
        .unwrap();
        let commit_ts = db.commit(tx).unwrap();
        assert_eq!(commit_ts, Timestamp(2));

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 11i64));
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.len(), 1);
        assert_eq!(r.result.validity, ValidityInterval::unbounded(Timestamp(2)));
        assert!(r
            .result
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("users", "id=11")));
    }

    #[test]
    fn uncommitted_writes_invisible_to_others_and_undone_by_abort() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        db.insert(
            tx,
            "users",
            vec![Value::Int(99), Value::text("ghost"), Value::Int(0)],
        )
        .unwrap();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 99i64));
        // Another transaction does not see it.
        let other = db.query_ro_once(&q).unwrap();
        assert!(other.result.is_empty());
        // The writer does.
        let mine = db.query(tx, &q).unwrap();
        assert_eq!(mine.len(), 1);
        db.abort(tx).unwrap();
        let after = db.query_ro_once(&q).unwrap();
        assert!(after.result.is_empty());
        assert_eq!(db.stats().aborts, 1);
    }

    #[test]
    fn update_produces_new_version_and_invalidation() {
        let db = setup();
        let rx = db.subscribe_invalidations();
        let tx = db.begin_rw().unwrap();
        let n = db
            .update(
                tx,
                "users",
                &Predicate::eq("id", 3i64),
                &[("rating".to_string(), Value::Int(5))],
            )
            .unwrap();
        assert_eq!(n, 1);
        let ts = db.commit(tx).unwrap();

        let msg = rx.try_recv().unwrap();
        assert_eq!(msg.timestamp, ts);
        assert!(msg
            .tags
            .tags()
            .contains(&InvalidationTag::keyed("users", "id=3")));

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 3i64));
        let r = db.query_ro_once(&q).unwrap();
        assert_eq!(r.result.get(0, "rating").unwrap(), &Value::Int(5));
        assert_eq!(r.result.validity, ValidityInterval::unbounded(ts));
    }

    #[test]
    fn delete_removes_row_and_tags_it() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        let n = db.delete(tx, "users", &Predicate::eq("id", 7i64)).unwrap();
        assert_eq!(n, 1);
        db.commit(tx).unwrap();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 7i64));
        assert!(db.query_ro_once(&q).unwrap().result.is_empty());
        assert_eq!(db.stats().deletes, 1);
    }

    #[test]
    fn write_in_read_only_transaction_is_rejected() {
        let db = setup();
        let tx = db.begin_ro(None).unwrap();
        let err = db
            .insert(tx, "users", vec![Value::Int(50), Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)));
        db.commit(tx).unwrap();
    }

    #[test]
    fn write_write_conflict_detected() {
        let db = setup();
        let t1 = db.begin_rw().unwrap();
        let t2 = db.begin_rw().unwrap();
        db.update(
            t1,
            "users",
            &Predicate::eq("id", 5i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        // t2 attempts to update the same row while t1's change is pending.
        let err = db
            .update(
                t2,
                "users",
                &Predicate::eq("id", 5i64),
                &[("rating".to_string(), Value::Int(2))],
            )
            .unwrap_err();
        assert!(err.is_retryable());
        db.commit(t1).unwrap();
        db.abort(t2).unwrap();

        // A transaction whose snapshot predates t1's commit also conflicts.
        let t3 = db.begin_rw().unwrap();
        let t4 = db.begin_rw().unwrap();
        db.update(
            t3,
            "users",
            &Predicate::eq("id", 6i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        db.commit(t3).unwrap();
        let err = db
            .update(
                t4,
                "users",
                &Predicate::eq("id", 6i64),
                &[("rating".to_string(), Value::Int(2))],
            )
            .unwrap_err();
        assert!(matches!(err, Error::SerializationFailure(_)));
        assert_eq!(db.stats().serialization_failures, 2);
    }

    #[test]
    fn pinned_snapshot_queries_see_the_past() {
        let db = setup();
        let (snap, _) = db.pin_latest();
        // Update user 2's name after the pin.
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 2i64),
            &[("name".to_string(), Value::text("renamed"))],
        )
        .unwrap();
        db.commit(tx).unwrap();

        let q = SelectQuery::table("users").filter(Predicate::eq("id", 2i64));
        // Latest sees the new name.
        let now = db.query_ro_once(&q).unwrap();
        assert_eq!(now.result.get(0, "name").unwrap(), &Value::text("renamed"));
        // The pinned snapshot still sees the old name, with a bounded
        // validity interval.
        let past = db.begin_ro(Some(snap)).unwrap();
        let r = db.query(past, &q).unwrap();
        assert_eq!(r.get(0, "name").unwrap(), &Value::text("user2"));
        assert!(!r.validity.is_unbounded());
        db.commit(past).unwrap();
        db.unpin(snap).unwrap();
        assert!(db.begin_ro(Some(snap)).is_err());
    }

    #[test]
    fn vacuum_respects_pins() {
        let db = setup();
        let (snap, _) = db.pin_latest();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(9))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        // The old version is dead but still visible to the pinned snapshot.
        assert_eq!(db.vacuum(), 0);
        db.unpin(snap).unwrap();
        assert_eq!(db.vacuum(), 1);
        assert_eq!(db.stats().vacuumed_versions, 1);
    }

    #[test]
    fn pin_below_vacuum_watermark_is_rejected() {
        let db = setup();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(9))],
        )
        .unwrap();
        db.commit(tx).unwrap(); // latest is now 2
        assert_eq!(db.vacuum(), 1); // horizon (and watermark) advance to 2
        let err = db.pin(Timestamp(1)).unwrap_err();
        assert!(matches!(err, Error::SnapshotUnavailable(_)));
        // The current horizon itself is still pinnable.
        let id = db.pin(Timestamp(2)).unwrap();
        db.unpin(id).unwrap();
    }

    #[test]
    fn wildcard_aggregation_for_bulk_updates() {
        let config = DbConfig {
            wildcard_threshold: 5,
            ..DbConfig::default()
        };
        let db = Database::new(config, SimClock::new());
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            (1..=20i64)
                .map(|i| vec![Value::Int(i), Value::text("u"), Value::Int(0)])
                .collect(),
        )
        .unwrap();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::cmp("id", CmpOp::Le, 10i64),
            &[("rating".to_string(), Value::Int(1))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        let log = db.invalidation_log();
        assert_eq!(log.len(), 1);
        assert_eq!(
            log[0].tags.tags(),
            &[InvalidationTag::wildcard("users")],
            "10 modified rows >= threshold 5 collapse to a wildcard"
        );
    }

    #[test]
    fn stock_database_mode_produces_no_invalidations() {
        let config = DbConfig {
            exec: ExecOptions {
                track_validity: false,
                predicate_before_visibility: false,
            },
            ..DbConfig::default()
        };
        let db = Database::new(config, SimClock::new());
        db.create_table(users_schema()).unwrap();
        db.bulk_load(
            "users",
            vec![vec![Value::Int(1), Value::text("a"), Value::Int(0)]],
        )
        .unwrap();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(2))],
        )
        .unwrap();
        db.commit(tx).unwrap();
        assert!(db.invalidation_log().is_empty());
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
        let r = db.query_ro_once(&q).unwrap();
        assert!(r.result.tags.is_empty());
    }

    #[test]
    fn unknown_transactions_are_rejected() {
        let db = setup();
        let bogus = TxnToken(9999);
        assert!(db.commit(bogus).is_err());
        assert!(db.abort(bogus).is_err());
        assert!(db.query(bogus, &SelectQuery::table("users")).is_err());
    }

    #[test]
    fn buffer_stats_accumulate_and_reset() {
        let db = setup();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
        db.query_ro_once(&q).unwrap();
        assert!(db.buffer_stats().accesses() > 0);
        db.reset_buffer_stats();
        assert_eq!(db.buffer_stats().accesses(), 0);
    }

    #[test]
    fn pin_future_timestamp_rejected() {
        let db = setup();
        assert!(db.pin(Timestamp(999)).is_err());
        let id = db.pin(Timestamp(1)).unwrap();
        assert_eq!(db.pinned_snapshots(), vec![Timestamp(1)]);
        db.unpin(id).unwrap();
    }

    #[test]
    fn shard_stats_expose_lock_activity() {
        let db = setup();
        let q = SelectQuery::table("users").filter(Predicate::eq("id", 1i64));
        db.query_ro_once(&q).unwrap();
        let tx = db.begin_rw().unwrap();
        db.update(
            tx,
            "users",
            &Predicate::eq("id", 1i64),
            &[("rating".to_string(), Value::Int(3))],
        )
        .unwrap();
        db.commit(tx).unwrap();

        let stats = db.shard_stats();
        assert_eq!(stats.len(), 1);
        let users = &stats[0];
        assert_eq!(users.table, "users");
        assert!(users.read_locks > 0, "queries take shared locks");
        assert!(
            users.write_locks >= 2,
            "DML and commit stamping take exclusive locks"
        );
        // Single-threaded use never waits.
        assert_eq!(users.read_waits, 0);
        assert_eq!(users.write_waits, 0);
    }

    #[test]
    fn parallel_readers_and_writer_agree_on_commit_order() {
        let db = Arc::new(setup());
        let rounds = 50;
        std::thread::scope(|scope| {
            let writer = {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for i in 0..rounds {
                        let tx = db.begin_rw().unwrap();
                        db.update(
                            tx,
                            "users",
                            &Predicate::eq("id", 4i64),
                            &[("rating".to_string(), Value::Int(i))],
                        )
                        .unwrap();
                        db.commit(tx).unwrap();
                    }
                })
            };
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    let db = Arc::clone(&db);
                    scope.spawn(move || {
                        let q = SelectQuery::table("users").filter(Predicate::eq("id", 4i64));
                        for _ in 0..rounds {
                            let r = db.query_ro_once(&q).unwrap();
                            assert_eq!(r.result.len(), 1, "row 4 must always be visible");
                        }
                    })
                })
                .collect();
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
        // The invalidation stream is strictly ordered by commit timestamp.
        let log = db.invalidation_log();
        assert_eq!(log.len(), rounds as usize);
        for pair in log.windows(2) {
            assert!(pair[0].timestamp < pair[1].timestamp);
        }
    }

    #[test]
    fn concurrent_begins_race_vacuum_safely() {
        let db = Arc::new(setup());
        std::thread::scope(|scope| {
            let vacuumer = {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    for _ in 0..200 {
                        db.vacuum();
                    }
                })
            };
            let beginners: Vec<_> = (0..3)
                .map(|_| {
                    let db = Arc::clone(&db);
                    scope.spawn(move || {
                        let q = SelectQuery::table("users").aggregate(Aggregate::Count);
                        for _ in 0..200 {
                            let r = db.query_ro_once(&q).unwrap();
                            assert_eq!(r.result.get(0, "count").unwrap(), &Value::Int(10));
                        }
                    })
                })
                .collect();
            vacuumer.join().unwrap();
            for b in beginners {
                b.join().unwrap();
            }
        });
    }
}
