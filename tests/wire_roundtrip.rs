//! Property tests for the `wire` protocol: every frame type must survive
//! encode → decode unchanged, including empty-tag-set and max-size edges.

use proptest::prelude::*;

use txcache_repro::txtypes::{
    CacheKey, InvalidationTag, TagSet, Timestamp, ValidityInterval, WallClock,
};
use txcache_repro::wire::{read_frame, write_frame};
use txcache_repro::wire::{
    ErrorCode, GetResult, HistogramReport, InvalidationEvent, MetricsReport, MissCode, NodeStats,
    PutEntry, Request, Response, ShardStats, PROTOCOL_VERSION,
};

use bytes::Bytes;

fn key_strategy() -> impl Strategy<Value = CacheKey> {
    ("[a-z_]{1,12}", "[a-z0-9_]{0,20}").prop_map(|(f, a)| CacheKey::new(f, a))
}

fn tag_strategy() -> impl Strategy<Value = InvalidationTag> {
    ("[a-z_]{1,8}", proptest::option::of("[a-z0-9_=]{1,10}")).prop_map(|(table, key)| match key {
        Some(k) => InvalidationTag::keyed(table, k),
        None => InvalidationTag::wildcard(table),
    })
}

fn tagset_strategy() -> impl Strategy<Value = TagSet> {
    proptest::collection::vec(tag_strategy(), 0..5).prop_map(|tags| tags.into_iter().collect())
}

fn interval_strategy() -> impl Strategy<Value = ValidityInterval> {
    (0u64..1_000, proptest::option::of(1u64..500)).prop_map(|(lo, width)| match width {
        Some(w) => ValidityInterval::bounded(Timestamp(lo), Timestamp(lo + w)).unwrap(),
        None => ValidityInterval::unbounded(Timestamp(lo)),
    })
}

fn value_strategy() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(0u8..=255u8, 0..128).prop_map(Bytes::from)
}

fn ts() -> impl Strategy<Value = Timestamp> {
    (0u64..u64::MAX).prop_map(Timestamp)
}

fn roundtrip_request(request: &Request) {
    let body = request.encode();
    assert_eq!(body[0], PROTOCOL_VERSION);
    assert_eq!(&Request::decode(&body).unwrap(), request);
}

fn roundtrip_response(response: &Response) {
    let body = response.encode();
    assert_eq!(body[0], PROTOCOL_VERSION);
    assert_eq!(&Response::decode(&body).unwrap(), response);
}

proptest! {
    #[test]
    fn ping_and_pong_roundtrip(nonce in 0u64..u64::MAX) {
        roundtrip_request(&Request::Ping { nonce });
        roundtrip_response(&Response::Pong { nonce });
    }

    #[test]
    fn versioned_get_roundtrips(key in key_strategy(), lo in ts(), hi in ts(), fresh in ts()) {
        roundtrip_request(&Request::VersionedGet {
            key,
            pinset_lo: lo,
            pinset_hi: hi,
            freshness_lo: fresh,
        });
    }

    #[test]
    fn put_roundtrips(
        key in key_strategy(),
        value in value_strategy(),
        validity in interval_strategy(),
        tags in tagset_strategy(),
        now in 0u64..u64::MAX,
    ) {
        roundtrip_request(&Request::Put {
            key,
            value,
            validity,
            tags,
            now: WallClock::from_micros(now),
        });
    }

    #[test]
    fn invalidation_batch_roundtrips(
        stamps in proptest::collection::vec(0u64..10_000, 0..6),
        tagsets in proptest::collection::vec(tagset_strategy(), 0..6),
        heartbeat in ts(),
    ) {
        let events: Vec<InvalidationEvent> = stamps
            .into_iter()
            .zip(tagsets)
            .map(|(s, tags)| InvalidationEvent { timestamp: Timestamp(s), tags })
            .collect();
        roundtrip_request(&Request::InvalidationBatch { events, heartbeat });
    }

    #[test]
    fn maintenance_requests_roundtrip(horizon in ts()) {
        roundtrip_request(&Request::EvictStale { min_useful_ts: horizon });
        roundtrip_request(&Request::Stats);
        roundtrip_request(&Request::ResetStats);
        roundtrip_request(&Request::SealStillValid);
    }

    #[test]
    fn hit_and_miss_roundtrip(
        value in value_strategy(),
        validity in interval_strategy(),
        stored in interval_strategy(),
        tags in tagset_strategy(),
        kind in 0u8..4,
    ) {
        roundtrip_response(&Response::Hit {
            value,
            validity,
            stored_validity: stored,
            tags,
        });
        let kind = match kind {
            0 => MissCode::Compulsory,
            1 => MissCode::Staleness,
            2 => MissCode::Capacity,
            _ => MissCode::Consistency,
        };
        roundtrip_response(&Response::Miss { kind });
    }

    #[test]
    fn acks_and_stats_roundtrip(applied in 0u64..u64::MAX, hits in 0u64..u64::MAX, bytes in 0u64..u64::MAX) {
        roundtrip_response(&Response::PutAck);
        roundtrip_response(&Response::InvalidationAck { applied });
        roundtrip_response(&Response::Sealed { sealed: applied });
        roundtrip_response(&Response::Ok);
        roundtrip_response(&Response::StatsSnapshot(NodeStats {
            hits,
            history_floor_drops: applied,
            used_bytes: bytes,
            ..NodeStats::default()
        }));
    }

    #[test]
    fn shard_stats_roundtrip(
        shards in proptest::collection::vec(
            (0u32..64, 0u64..u64::MAX, 0u64..u64::MAX, 0u64..1_000_000, 0u64..1_000_000),
            0..16,
        ),
    ) {
        roundtrip_request(&Request::ShardStats);
        let shards: Vec<ShardStats> = shards
            .into_iter()
            .map(|(shard, reads, writes, evictions, bytes)| ShardStats {
                shard,
                read_locks: reads,
                write_locks: writes,
                read_waits: reads / 7,
                write_waits: writes / 11,
                lru_evictions: evictions,
                staleness_evictions: evictions / 3,
                entries: evictions.saturating_add(1),
                used_bytes: bytes,
            })
            .collect();
        roundtrip_response(&Response::ShardStatsSnapshot(shards));
    }

    #[test]
    fn error_frames_roundtrip(code in 0u8..3, message in "[a-z0-9 _]{0,40}") {
        let code = match code {
            0 => ErrorCode::Version,
            1 => ErrorCode::Malformed,
            _ => ErrorCode::Internal,
        };
        roundtrip_response(&Response::Error { code, message });
    }

    #[test]
    fn corrupt_bodies_never_panic(noise in proptest::collection::vec(0u8..=255u8, 0..64)) {
        // Decoding arbitrary bytes must fail cleanly, never panic.
        let _ = Request::decode(&noise);
        let _ = Response::decode(&noise);
    }

    #[test]
    fn multiget_roundtrips(
        keys in proptest::collection::vec(key_strategy(), 0..8),
        lo in ts(),
        hi in ts(),
        fresh in ts(),
        epoch in 0u64..u64::MAX,
    ) {
        roundtrip_request(&Request::MultiGet {
            epoch,
            keys,
            pinset_lo: lo,
            pinset_hi: hi,
            freshness_lo: fresh,
        });
    }

    #[test]
    fn multiput_roundtrips(
        entries in proptest::collection::vec(put_entry_strategy(), 0..6),
        epoch in 0u64..u64::MAX,
    ) {
        roundtrip_request(&Request::MultiPut { epoch, entries });
    }

    #[test]
    fn ring_epoch_messages_roundtrip(epoch in 0u64..u64::MAX, expected in 0u64..u64::MAX) {
        roundtrip_request(&Request::RingEpoch { epoch });
        roundtrip_response(&Response::EpochAck { epoch });
        roundtrip_response(&Response::WrongEpoch { expected });
    }

    #[test]
    fn multiget_result_and_multiput_ack_roundtrip(
        results in proptest::collection::vec(get_result_strategy(), 0..8),
        applied in 0u64..u64::MAX,
    ) {
        roundtrip_response(&Response::MultiGetResult { results });
        roundtrip_response(&Response::MultiPutAck { applied });
    }

    #[test]
    fn corrupt_multi_frames_never_panic(
        keys in proptest::collection::vec(key_strategy(), 1..5),
        entries in proptest::collection::vec(put_entry_strategy(), 1..4),
        cut in 0usize..200,
        flip_at in 0usize..200,
        flip_with in 1u8..=255,
    ) {
        // Valid MultiGet/MultiPut encodings mutilated by truncation and a
        // byte flip must fail to decode cleanly, never panic — the server
        // feeds exactly these bytes to Request::decode off the wire.
        let frames = [
            Request::MultiGet {
                epoch: 3,
                keys,
                pinset_lo: Timestamp(1),
                pinset_hi: Timestamp(9),
                freshness_lo: Timestamp(1),
            }
            .encode(),
            Request::MultiPut { epoch: 7, entries }.encode(),
        ];
        for body in &frames {
            let truncated = &body[..cut.min(body.len())];
            let _ = Request::decode(truncated);
            let mut flipped = body.clone();
            let at = flip_at % flipped.len();
            flipped[at] ^= flip_with;
            let _ = Request::decode(&flipped);
        }
    }

    #[test]
    fn metrics_frames_roundtrip(report in metrics_report_strategy()) {
        roundtrip_request(&Request::Metrics);
        roundtrip_response(&Response::MetricsSnapshot(report));
    }

    #[test]
    fn corrupt_metrics_frames_never_panic(
        report in metrics_report_strategy(),
        cut in 0usize..400,
        flip_at in 0usize..400,
        flip_with in 1u8..=255,
    ) {
        // A MetricsSnapshot is the largest response frame the protocol has
        // (named series plus sparse histogram buckets); a scraping client
        // feeds exactly these bytes to Response::decode, so mutilated
        // encodings must fail cleanly, never panic.
        let body = Response::MetricsSnapshot(report).encode();
        let truncated = &body[..cut.min(body.len())];
        let _ = Response::decode(truncated);
        let mut flipped = body.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_with;
        let _ = Response::decode(&flipped);
    }
}

fn metrics_report_strategy() -> impl Strategy<Value = MetricsReport> {
    let name = "[a-z][a-z0-9._]{0,24}";
    let histogram = (
        name,
        0u64..1_000_000,
        0u64..u64::MAX,
        0u64..u64::MAX,
        0u64..u64::MAX,
        proptest::collection::vec((0u8..64, 1u64..1_000_000), 0..8),
    )
        .prop_map(|(name, count, sum, min, max, buckets)| HistogramReport {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        });
    (
        proptest::collection::vec((name, 0u64..u64::MAX), 0..8),
        proptest::collection::vec((name, i64::MIN..i64::MAX), 0..4),
        proptest::collection::vec(histogram, 0..4),
    )
        .prop_map(|(counters, gauges, histograms)| MetricsReport {
            counters,
            gauges,
            histograms,
        })
}

fn put_entry_strategy() -> impl Strategy<Value = PutEntry> {
    (
        key_strategy(),
        value_strategy(),
        interval_strategy(),
        tagset_strategy(),
        0u64..u64::MAX,
    )
        .prop_map(|(key, value, validity, tags, now)| PutEntry {
            key,
            value,
            validity,
            tags,
            now: WallClock::from_micros(now),
        })
}

fn get_result_strategy() -> impl Strategy<Value = GetResult> {
    (
        0u8..8,
        value_strategy(),
        interval_strategy(),
        interval_strategy(),
        tagset_strategy(),
    )
        .prop_map(
            |(pick, value, validity, stored_validity, tags)| match pick {
                0 => GetResult::Miss {
                    kind: MissCode::Compulsory,
                },
                1 => GetResult::Miss {
                    kind: MissCode::Staleness,
                },
                2 => GetResult::Miss {
                    kind: MissCode::Capacity,
                },
                3 => GetResult::Miss {
                    kind: MissCode::Consistency,
                },
                _ => GetResult::Hit {
                    value,
                    validity,
                    stored_validity,
                    tags,
                },
            },
        )
}

// ----------------------------------------------------------------------
// Deterministic edge cases the random strategies may not reliably hit.
// ----------------------------------------------------------------------

#[test]
fn empty_tag_set_and_empty_value_roundtrip() {
    roundtrip_request(&Request::Put {
        key: CacheKey::new("f", ""),
        value: Bytes::new(),
        validity: ValidityInterval::unbounded(Timestamp::ZERO),
        tags: TagSet::new(),
        now: WallClock::ZERO,
    });
    roundtrip_response(&Response::Hit {
        value: Bytes::new(),
        validity: ValidityInterval::unbounded(Timestamp::ZERO),
        stored_validity: ValidityInterval::unbounded(Timestamp::ZERO),
        tags: TagSet::new(),
    });
    roundtrip_request(&Request::InvalidationBatch {
        events: Vec::new(),
        heartbeat: Timestamp::ZERO,
    });
}

#[test]
fn extreme_timestamps_and_large_values_roundtrip() {
    roundtrip_request(&Request::VersionedGet {
        key: CacheKey::new("f", "x".repeat(4096)),
        pinset_lo: Timestamp::ZERO,
        pinset_hi: Timestamp::MAX,
        freshness_lo: Timestamp::MAX,
    });
    // A megabyte-scale value — far above any strategy-generated payload but
    // well under the frame cap, exercising the length-prefixed path.
    roundtrip_request(&Request::Put {
        key: CacheKey::new("f", "[big]"),
        value: Bytes::from(vec![0xAB; 1 << 20]),
        validity: ValidityInterval {
            lower: Timestamp::ZERO,
            upper: Some(Timestamp::MAX),
        },
        tags: [InvalidationTag::wildcard("t")].into_iter().collect(),
        now: WallClock::from_micros(u64::MAX),
    });
    roundtrip_response(&Response::InvalidationAck { applied: u64::MAX });
}

#[test]
fn frames_above_the_size_cap_are_rejected() {
    let oversized = vec![0u8; txcache_repro::wire::MAX_FRAME_BYTES + 1];
    let mut sink = Vec::new();
    assert!(write_frame(&mut sink, &oversized).is_err());

    // A forged oversized length prefix is rejected before allocation.
    let mut forged = Vec::new();
    forged.extend_from_slice(&(u32::MAX).to_le_bytes());
    let mut cursor = std::io::Cursor::new(forged);
    assert!(read_frame(&mut cursor).is_err());
}

// ----------------------------------------------------------------------
// Partial-frame resumption: a read that stops mid-frame (timeout, slow
// peer, chunked sim delivery) must resume cleanly, never desynchronize.
// ----------------------------------------------------------------------

/// A transport that delivers a byte stream in tiny chunks and returns a
/// timeout error between every chunk.
struct TricklingStream {
    data: Vec<u8>,
    pos: usize,
    hiccup: bool,
    chunk: usize,
}

impl std::io::Read for TricklingStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.hiccup = !self.hiccup;
        if self.hiccup {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "trickle timeout",
            ));
        }
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl std::io::Write for TricklingStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Regression test for mid-stream truncation of a read: timeouts landing
/// inside the length prefix and inside the body must both leave the stream
/// resumable, and every frame must decode intact afterwards.
#[test]
fn truncated_mid_stream_reads_resume_cleanly() {
    use txcache_repro::wire::FramedStream;

    let requests = all_roundtrip_requests();
    let mut data = Vec::new();
    for request in &requests {
        // Frame bodies as the framed stream would send them: an 8-byte
        // sequence number then the encoded request.
        let mut body = (1u64).to_le_bytes().to_vec();
        body.extend_from_slice(&request.encode());
        write_frame(&mut data, &body).unwrap();
    }

    // Chunk sizes 1..5 sweep every possible split point, including inside
    // the 4-byte length prefix and inside the 8-byte sequence number.
    for chunk in 1..=5usize {
        let mut framed = FramedStream::new(TricklingStream {
            data: data.clone(),
            pos: 0,
            hiccup: false,
            chunk,
        });
        let mut decoded = Vec::new();
        loop {
            match framed.recv_request() {
                Ok(Some((seq, request))) => {
                    assert_eq!(seq, 1);
                    decoded.push(request.expect("body must decode"));
                }
                Ok(None) => break,
                Err(txcache_repro::wire::WireError::Io(e))
                    if e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(e) => panic!("chunk={chunk}: unexpected error {e}"),
            }
        }
        assert_eq!(decoded, requests, "chunk={chunk}");
    }
}

fn all_roundtrip_requests() -> Vec<Request> {
    vec![
        Request::Ping { nonce: 7 },
        Request::VersionedGet {
            key: CacheKey::new("f", "[1]"),
            pinset_lo: Timestamp(3),
            pinset_hi: Timestamp(9),
            freshness_lo: Timestamp(1),
        },
        Request::Put {
            key: CacheKey::new("g", "[2]"),
            value: Bytes::from(vec![0xAB; 37]),
            validity: ValidityInterval::unbounded(Timestamp(4)),
            tags: [InvalidationTag::keyed("items", "id=7")]
                .into_iter()
                .collect(),
            now: WallClock::from_secs(1),
        },
        Request::SealStillValid,
    ]
}

// ----------------------------------------------------------------------
// Sequence-number correlation (protocol v2) over a real duplex transport.
// ----------------------------------------------------------------------

/// A full request/response conversation over an in-process `SimNet` pipe:
/// the client's sequence numbers are echoed by a hand-rolled server and
/// verified by the stream layer, including under pipelining.
#[test]
fn sequence_numbers_roundtrip_over_a_sim_pipe() {
    use txcache_repro::wire::{Connector, FramedStream, Listener, Response, SimNet};

    let net = SimNet::new(5);
    let listener = net.bind("seq-check");
    let client_conn = net
        .connect("seq-check", std::time::Duration::from_secs(1))
        .unwrap();
    let server_conn = listener.accept().unwrap();
    let mut client = FramedStream::new(client_conn);
    let mut server = FramedStream::new(server_conn);

    // Pipeline three requests, then serve and verify them in order.
    client.send_request(&Request::Ping { nonce: 1 }).unwrap();
    client.send_request(&Request::Ping { nonce: 2 }).unwrap();
    client.send_request(&Request::Stats).unwrap();
    for _ in 0..3 {
        let (seq, request) = server.recv_request().unwrap().unwrap();
        let response = match request.unwrap() {
            Request::Ping { nonce } => Response::Pong { nonce },
            _ => Response::Ok,
        };
        server.send_response(seq, &response).unwrap();
    }
    assert_eq!(
        client.recv_response().unwrap().unwrap(),
        Response::Pong { nonce: 1 }
    );
    assert_eq!(
        client.recv_response().unwrap().unwrap(),
        Response::Pong { nonce: 2 }
    );
    assert_eq!(client.recv_response().unwrap().unwrap(), Response::Ok);
}

/// A response delivered twice (as a duplicating network would) must be
/// rejected as a desync instead of being attributed to the next request.
#[test]
fn duplicated_responses_are_detected_as_desyncs() {
    use txcache_repro::wire::{Connector, FramedStream, Listener, Response, SimNet, WireError};

    let net = SimNet::new(6);
    let listener = net.bind("dup-check");
    let client_conn = net
        .connect("dup-check", std::time::Duration::from_secs(1))
        .unwrap();
    let server_conn = listener.accept().unwrap();
    let mut client = FramedStream::new(client_conn);
    let mut server = FramedStream::new(server_conn);

    client.send_request(&Request::Ping { nonce: 1 }).unwrap();
    let (seq, _) = server.recv_request().unwrap().unwrap();
    // The "network" delivers the response twice.
    server
        .send_response(seq, &Response::Pong { nonce: 1 })
        .unwrap();
    server
        .send_response(seq, &Response::Pong { nonce: 1 })
        .unwrap();

    assert_eq!(
        client.recv_response().unwrap().unwrap(),
        Response::Pong { nonce: 1 }
    );
    client.send_request(&Request::Ping { nonce: 2 }).unwrap();
    // The duplicate arrives where request 2's response belongs: desync,
    // not a wrong answer.
    assert!(matches!(
        client.recv_response(),
        Err(WireError::Desync { .. })
    ));
}
