#!/usr/bin/env bash
# CI gate for the TxCache reproduction workspace.
#
# Runs the same checks a hosted pipeline would, fully offline (all
# dependencies are vendored path crates):
#   1. rustfmt in check mode
#   2. clippy with warnings denied (all targets, incl. vendored stubs)
#   3. build of every target (bins and benches included)
#   4. the full test suite
#   5. an explicit compile check of the examples (also covered by
#      --all-targets, kept as a named step so a broken example is called out)
#   6. optionally, the chaos smoke gate (--chaos-smoke): a short bounded
#      chaos sweep over a fixed seed set — real txcached servers and the
#      remote client joined by the deterministic in-process SimNet, with
#      frame drops/duplicates/reorders/resets and a scripted partition,
#      verified by the transactional-consistency history checker on both
#      cache backends. The sweep ends with the replication profile: R=2
#      replica sets, a scripted primary kill mid-workload, zero checker
#      violations, a bounded hit-rate dip, and a bit-for-bit replay —
#      followed by the crash-restart profile: a durable mvdb (group-
#      committed WAL) crashed mid-workload after silently committed
#      transfers, recovered into the same warm caches, with the history
#      checker proving the recovered invalidation horizon kept every cache
#      honest, a bit-for-bit replay of the whole run, and a mutation canary
#      (horizon rebuild skipped) that must make the checker fail.
#      Failures print the seed and a CHAOS_SEED=... repro command; set
#      CHAOS_SEED to pin the sweep to one seed.
#   7. optionally, the network smoke gate (--net-smoke): starts a real
#      txcached server (event-driven loop, explicit --shards) on an
#      ephemeral loopback port, probes it with `txcached --ping`, runs the
#      remote-backend consistency test against it via TXCACHED_ADDRS, and
#      tears the server down again. A second server is then started under
#      a deliberately tiny `ulimit -n` and flooded with more connections
#      than it has descriptors: fd exhaustion must park the accept loop
#      (EMFILE backoff) rather than crash the process, and once the flood
#      closes, `--ping` must answer again over the recovered loop.
#   8. optionally, the bench-regression smoke gate (--bench-smoke): the
#      fig5_throughput thread sweep compared against a baseline JSON, the
#      cache_scaling sweep (mixed lookup/insert throughput against one
#      sharded cache node, in-process) compared against its own baseline,
#      the high_connection connection-ramp sweep (one event-driven
#      txcached, 1..128 concurrent connections) compared against its
#      baseline, and the net_loopback replicated-write phase (an R=2
#      client fanning every Put to its full replica set over real
#      loopback servers; write amplification gated in-binary at <= 3.5x
#      and the fill-rate pair tracked against a baseline). The baselines
#      default to the checked-in
#      crates/bench/BENCH_fig5.baseline.json,
#      crates/bench/BENCH_cache_scaling.baseline.json,
#      crates/bench/BENCH_high_connection.baseline.json and
#      crates/bench/BENCH_net_replication.baseline.json and can be
#      overridden with the BENCH_BASELINE / CACHE_BENCH_BASELINE /
#      HIGH_CONN_BENCH_BASELINE / NET_REPL_BENCH_BASELINE environment
#      variables. The step also runs the durability sweep (fig5_throughput
#      --durability: committed writes against a real durable mvdb under
#      Never / GroupCommit / Always fsync policies) against
#      crates/bench/BENCH_fig5_durability.baseline.json (override with
#      DURABILITY_BENCH_BASELINE) at the standard 20% ceiling, and the
#      query_paths fast-path sweep (index-assisted top-N / MIN-MAX /
#      COUNT / IN-list plans vs the forced seq scan; >= 3x top-N speedup
#      enforced in-binary) against
#      crates/bench/BENCH_query_paths.baseline.json (override with
#      QUERY_PATHS_BENCH_BASELINE). Absolute txn/s is only compared when the host has the
#      same CPU count the baseline was
#      recorded with (the hosted workflow caches a runner-class baseline
#      for this); the >=1.5x 4-thread speedup floor applies on any host
#      with at least 4 CPUs (connection ramps carry no speedup floor —
#      flat is the win). The step ends with the instrumentation-overhead
#      gate: cache_scaling's wire-path A/B phase (metrics on vs off,
#      median paired per-op cost) must stay within 5%.
#   9. optionally, the observability smoke gate (--obs-smoke): starts a
#      real txcached on an ephemeral loopback port, drives traffic and
#      scrapes it over the wire via the obs_smoke integration test
#      (Metrics opcode answers with nonzero per-opcode latency
#      percentiles, counters monotone across scrapes), exercises the
#      `txcached --metrics` / `--prom` CLI scrape against the live node,
#      and tears it down.
#
# Every step is timed, and a summary is printed at the end; on failure the
# summary names the step that failed so workflow logs show the broken gate
# at a glance.
#
# Usage: ./ci.sh [--no-clippy] [--profile debug|release] [--bench-smoke]
#                [--net-smoke] [--chaos-smoke] [--obs-smoke]
#
#   --profile release (default)  build and test with --release
#   --profile debug              build and test the dev profile
#   --bench-smoke                run the throughput-regression gate (builds
#                                the release bench binary if needed)
#   --net-smoke                  run the txcached loopback network gate
#   --chaos-smoke                run the bounded chaos sweep (both backends,
#                                fixed seeds, history checker)
#   --obs-smoke                  run the live-metrics scrape gate against a
#                                real txcached
#
# To refresh the bench baselines after an intentional perf change:
#   cargo build --release -p bench --bin fig5_throughput --bin cache_scaling \
#       --bin high_connection --bin net_loopback --bin query_paths
#   target/release/fig5_throughput --scaling-only --threads 1,4 \
#       --requests 30000 --json crates/bench/BENCH_fig5.baseline.json
#   target/release/cache_scaling --threads 1,4 --requests 500000 \
#       --skip-tcp --json crates/bench/BENCH_cache_scaling.baseline.json
#   target/release/high_connection --connections 1,16,64,128 \
#       --requests 20000 --json crates/bench/BENCH_high_connection.baseline.json
#   target/release/net_loopback --keys 2048 \
#       --json crates/bench/BENCH_net_replication.baseline.json
#   target/release/fig5_throughput --durability --requests 2000 \
#       --json crates/bench/BENCH_fig5_durability.baseline.json
#   target/release/query_paths --requests 2000 \
#       --json crates/bench/BENCH_query_paths.baseline.json

set -uo pipefail
cd "$(dirname "$0")"

NO_CLIPPY=0
BENCH_SMOKE=0
NET_SMOKE=0
CHAOS_SMOKE=0
OBS_SMOKE=0
PROFILE=release
while [ $# -gt 0 ]; do
    case "$1" in
        --no-clippy) NO_CLIPPY=1 ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        --net-smoke) NET_SMOKE=1 ;;
        --chaos-smoke) CHAOS_SMOKE=1 ;;
        --obs-smoke) OBS_SMOKE=1 ;;
        --profile)
            shift
            PROFILE="${1:-}"
            case "$PROFILE" in
                debug|release) ;;
                *) echo "unknown profile: '$PROFILE' (want debug or release)" >&2; exit 2 ;;
            esac
            ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

SUMMARY=()

print_summary() {
    echo
    echo "== CI summary (profile: $PROFILE) =="
    local line
    for line in "${SUMMARY[@]}"; do
        echo "  $line"
    done
}

run_step() {
    local name="$1"
    shift
    local t0=$SECONDS
    echo "==> $name"
    if "$@"; then
        SUMMARY+=("ok   ${name} ($((SECONDS - t0))s)")
    else
        local rc=$?
        SUMMARY+=("FAIL ${name} ($((SECONDS - t0))s)")
        print_summary
        echo "CI gate FAILED at step: ${name} (exit ${rc}) after ${SECONDS}s."
        exit "$rc"
    fi
}

run_step "cargo fmt --check" cargo fmt --all --check

if [ "$NO_CLIPPY" -eq 0 ]; then
    run_step "cargo clippy (deny warnings)" \
        cargo clippy --workspace --all-targets -- -D warnings
fi

if [ "$PROFILE" = release ]; then
    run_step "cargo build --release (all targets)" \
        cargo build --workspace --release --all-targets
    run_step "cargo test --release" cargo test --workspace --release --quiet
    run_step "examples compile check" cargo build --release --examples
else
    run_step "cargo build (all targets)" cargo build --workspace --all-targets
    run_step "cargo test" cargo test --workspace --quiet
    run_step "examples compile check" cargo build --examples
fi

if [ "$CHAOS_SMOKE" -eq 1 ]; then
    # The bounded chaos sweep. The regular test step already runs the full
    # chaos suite on its default seed set, so this gate adds *different*
    # coverage: the seed-robust scenarios (random-fault survival on the
    # simulated wire tier, and the checker on the in-process backend) are
    # replayed under extra pinned seeds via CHAOS_SEED. Failures print the
    # seed and a one-line CHAOS_SEED=... repro command.
    CHAOS_PROFILE_FLAG=""
    [ "$PROFILE" = release ] && CHAOS_PROFILE_FLAG="--release"
    if [ -n "${CHAOS_SEED:-}" ]; then
        # An exported CHAOS_SEED pins the gate to that seed (replaying a
        # reported failure) instead of the extra sweep seeds.
        run_step "chaos smoke (pinned CHAOS_SEED=${CHAOS_SEED})" \
            cargo test $CHAOS_PROFILE_FLAG --quiet --test chaos
    else
        for CHAOS_SWEEP_SEED in 271828 31337; do
            run_step "chaos smoke (extra seed ${CHAOS_SWEEP_SEED}, both backends)" \
                env CHAOS_SEED="$CHAOS_SWEEP_SEED" \
                cargo test $CHAOS_PROFILE_FLAG --quiet --test chaos -- \
                sim_remote_backend_survives_random_faults \
                in_process_backend_passes_the_history_checker
        done
        # The replication profile: R=2 replica sets on the simulated wire
        # tier, a scripted primary kill mid-workload, and the history
        # checker — zero violations, a bounded hit-rate dip, and the healed
        # node serving again, plus the bit-for-bit replay of the same run.
        # These scenarios keep their own fixed, vetted seeds (CHAOS_SEED
        # does not move them), so the gate is deterministic.
        run_step "chaos smoke (replicated failover, R=2, fixed seed)" \
            cargo test $CHAOS_PROFILE_FLAG --quiet --test chaos -- \
            replicated_failover
        # The crash-restart profile: a durable mvdb (group-committed WAL in
        # a scratch dir) is crashed mid-workload after a burst of silently
        # committed transfers, recovered into the same warm caches, and the
        # history checker verifies the recovered invalidation horizon kept
        # every cache honest — zero violations, a bit-for-bit replay, and
        # the mutation canary (recovery with the horizon rebuild skipped)
        # must make the checker fail. Fixed, vetted seed; CHAOS_SEED does
        # not move it, so the gate is deterministic.
        run_step "chaos smoke (crash-restart recovery, durable WAL, fixed seed)" \
            cargo test $CHAOS_PROFILE_FLAG --quiet --test chaos -- \
            crash_restart checker_catches_skipped_horizon_recovery
    fi
fi

if [ "$NET_SMOKE" -eq 1 ]; then
    # Start a real txcached on an ephemeral loopback port, scrape the bound
    # address from its first stdout line, probe it, run the remote-backend
    # consistency test against it, and tear it down.
    if [ "$PROFILE" != release ]; then
        run_step "cargo build --release txcached (for net smoke)" \
            cargo build --release -p cache-server --bin txcached
    fi
    # --shards 4 exercises the event loop's worker pool handing off to a
    # sharded node, not just the single-shard default.
    TXCACHED_LOG="$(mktemp)"
    target/release/txcached --addr 127.0.0.1:0 --capacity-mb 16 \
        --name ci-smoke --shards 4 >"$TXCACHED_LOG" 2>&1 &
    TXCACHED_PID=$!
    trap 'kill "$TXCACHED_PID" 2>/dev/null; rm -f "$TXCACHED_LOG"' EXIT
    TXCACHED_ADDR=""
    for _ in $(seq 1 50); do
        TXCACHED_ADDR="$(sed -n 's/^txcached listening on //p' "$TXCACHED_LOG" | head -n1)"
        [ -n "$TXCACHED_ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$TXCACHED_ADDR" ]; then
        SUMMARY+=("FAIL net smoke (txcached did not start)")
        print_summary
        cat "$TXCACHED_LOG"
        exit 1
    fi
    run_step "net smoke: txcached --ping ${TXCACHED_ADDR}" \
        target/release/txcached --ping "$TXCACHED_ADDR"
    run_step "net smoke: remote-backend consistency vs ${TXCACHED_ADDR}" \
        env TXCACHED_ADDRS="$TXCACHED_ADDR" \
        cargo test --release --quiet --test net_smoke remote_backend_consistency_smoke
    kill "$TXCACHED_PID" 2>/dev/null
    wait "$TXCACHED_PID" 2>/dev/null
    trap - EXIT
    rm -f "$TXCACHED_LOG"
    SUMMARY+=("ok   net smoke teardown (txcached stopped)")

    # fd-exhaustion probe: a second server under a deliberately tiny fd
    # limit, flooded with more connections than the process can hold. The
    # event loop must park the accept side (EMFILE backoff) instead of
    # crashing, keep already-admitted connections alive, and resume
    # accepting once descriptors free up.
    FDPROBE_LOG="$(mktemp)"
    ( ulimit -n 48 2>/dev/null; exec target/release/txcached \
        --addr 127.0.0.1:0 --capacity-mb 16 --name ci-fd-probe \
        --shards 2 ) >"$FDPROBE_LOG" 2>&1 &
    FDPROBE_PID=$!
    trap 'kill "$FDPROBE_PID" 2>/dev/null; rm -f "$FDPROBE_LOG"' EXIT
    FDPROBE_ADDR=""
    for _ in $(seq 1 50); do
        FDPROBE_ADDR="$(sed -n 's/^txcached listening on //p' "$FDPROBE_LOG" | head -n1)"
        [ -n "$FDPROBE_ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$FDPROBE_ADDR" ]; then
        SUMMARY+=("FAIL net smoke (fd-probe txcached did not start)")
        print_summary
        cat "$FDPROBE_LOG"
        exit 1
    fi
    FDPROBE_HOST="${FDPROBE_ADDR%:*}"
    FDPROBE_PORT="${FDPROBE_ADDR##*:}"
    # Hold 64 idle connections open for a few seconds — well past the ~40
    # descriptors the server has left under ulimit -n 48 — from throwaway
    # subshells so the flood releases itself.
    for _ in $(seq 1 64); do
        ( exec 3<>"/dev/tcp/${FDPROBE_HOST}/${FDPROBE_PORT}" && sleep 3 ) \
            2>/dev/null &
    done
    sleep 1
    run_step "net smoke: server survives fd exhaustion (ulimit -n 48, 64 conns)" \
        kill -0 "$FDPROBE_PID"
    # Let the flood's subshells exit and the accept backoff lapse, then the
    # probe must get a fresh connection accepted and answered.
    sleep 3
    run_step "net smoke: txcached --ping after fd-exhaustion backoff" \
        target/release/txcached --ping "$FDPROBE_ADDR"
    kill "$FDPROBE_PID" 2>/dev/null
    wait "$FDPROBE_PID" 2>/dev/null
    trap - EXIT
    rm -f "$FDPROBE_LOG"
    SUMMARY+=("ok   net smoke teardown (fd-probe txcached stopped)")
fi

if [ "$OBS_SMOKE" -eq 1 ]; then
    # Start a real txcached, drive traffic and scrape its metrics over the
    # wire (the obs_smoke test asserts nonzero per-opcode latency
    # percentiles and counter monotonicity across scrapes), then exercise
    # the CLI scrape paths against the same live node.
    if [ "$PROFILE" != release ]; then
        run_step "cargo build --release txcached (for obs smoke)" \
            cargo build --release -p cache-server --bin txcached
    fi
    OBS_LOG="$(mktemp)"
    target/release/txcached --addr 127.0.0.1:0 --capacity-mb 16 \
        --name ci-obs-smoke --shards 4 >"$OBS_LOG" 2>&1 &
    OBS_PID=$!
    trap 'kill "$OBS_PID" 2>/dev/null; rm -f "$OBS_LOG"' EXIT
    OBS_ADDR=""
    for _ in $(seq 1 50); do
        OBS_ADDR="$(sed -n 's/^txcached listening on //p' "$OBS_LOG" | head -n1)"
        [ -n "$OBS_ADDR" ] && break
        sleep 0.1
    done
    if [ -z "$OBS_ADDR" ]; then
        SUMMARY+=("FAIL obs smoke (txcached did not start)")
        print_summary
        cat "$OBS_LOG"
        exit 1
    fi
    run_step "obs smoke: wire scrape + monotone counters vs ${OBS_ADDR}" \
        env TXCACHED_ADDRS="$OBS_ADDR" \
        cargo test --release --quiet --test obs_smoke \
        metrics_scrape_reports_latencies_and_monotone_counters
    run_step "obs smoke: txcached --metrics ${OBS_ADDR}" \
        target/release/txcached --metrics "$OBS_ADDR"
    run_step "obs smoke: txcached --metrics --prom ${OBS_ADDR}" \
        target/release/txcached --metrics "$OBS_ADDR" --prom
    kill "$OBS_PID" 2>/dev/null
    wait "$OBS_PID" 2>/dev/null
    trap - EXIT
    rm -f "$OBS_LOG"
    SUMMARY+=("ok   obs smoke teardown (txcached stopped)")
fi

if [ "$BENCH_SMOKE" -eq 1 ]; then
    if [ "$PROFILE" != release ]; then
        run_step "cargo build --release -p bench (for bench smoke)" \
            cargo build --release -p bench --bin fig5_throughput \
            --bin cache_scaling --bin high_connection --bin net_loopback \
            --bin query_paths
    fi
    # Which gates apply depends on the host: the absolute-throughput
    # comparison runs when the host's CPU count matches the baseline's
    # (use BENCH_BASELINE to point at a baseline for this machine class),
    # and the speedup floor runs on hosts with >= 4 CPUs.
    BASELINE="${BENCH_BASELINE:-crates/bench/BENCH_fig5.baseline.json}"
    run_step "bench smoke (fig5 thread sweep vs ${BASELINE})" \
        target/release/fig5_throughput --scaling-only --threads 1,4 \
        --requests 30000 --json BENCH_fig5.json \
        --baseline "$BASELINE" \
        --min-speedup 1.5
    # The cache-tier gate: lookup/insert throughput against one sharded
    # node. Same rules — 20% regression ceiling at the highest common
    # thread count, >=1.5x 4-thread speedup floor on >=4-CPU hosts.
    CACHE_BASELINE="${CACHE_BENCH_BASELINE:-crates/bench/BENCH_cache_scaling.baseline.json}"
    run_step "bench smoke (cache_scaling sweep vs ${CACHE_BASELINE})" \
        target/release/cache_scaling --threads 1,4 \
        --requests 500000 --skip-tcp --json BENCH_cache_scaling.json \
        --baseline "$CACHE_BASELINE" \
        --min-speedup 1.5
    # The network-tier gate: the event-driven server under a connection
    # ramp. The series should be flat — the point of the event loop is that
    # idle connections are free — so there is no speedup floor, only the
    # regression ceiling at the highest common ramp point (and only on
    # hosts matching the baseline's CPU count). The ceiling is looser than
    # the in-process gates' 20%: with client threads, reactor, and workers
    # all sharing the host's cores, this bench is scheduler-sensitive, and
    # what the gate exists to catch (the loop degrading as connections
    # ramp) is an order-of-magnitude collapse, not a 20% wobble.
    HIGH_CONN_BASELINE="${HIGH_CONN_BENCH_BASELINE:-crates/bench/BENCH_high_connection.baseline.json}"
    run_step "bench smoke (high_connection ramp vs ${HIGH_CONN_BASELINE})" \
        target/release/high_connection --connections 1,16,64,128 \
        --requests 20000 --json BENCH_high_connection.json \
        --baseline "$HIGH_CONN_BASELINE" \
        --max-regress 0.5
    # The replication gate: net_loopback's replicated-write phase fills the
    # same servers through an R=1 and an R=2 client, asserts the servers
    # hold exactly 2x the entries, gates the measured write amplification
    # at <= 3.5x in-binary, and compares the fill-rate pair (the "threads"
    # column is the replication factor) against its baseline. Loopback
    # timing wobbles more than in-process, hence the looser 50% ceiling.
    NET_REPL_BASELINE="${NET_REPL_BENCH_BASELINE:-crates/bench/BENCH_net_replication.baseline.json}"
    run_step "bench smoke (net_loopback R=2 write amplification vs ${NET_REPL_BASELINE})" \
        target/release/net_loopback --keys 2048 \
        --json BENCH_net_replication.json \
        --baseline "$NET_REPL_BASELINE" \
        --max-regress 0.5
    # The durability gate: fig5_throughput's fsync-policy sweep drives
    # committed write transactions against a real durable mvdb (WAL in a
    # scratch dir) under Never / GroupCommit / Always and compares against
    # its baseline with the standard 20% ceiling. The gate point is the
    # Always leg (the highest "thread" index) — fsync-bound and the most
    # stable of the three — so a regression here means the WAL append or
    # group-commit path itself got slower, not scheduler noise.
    DURABILITY_BASELINE="${DURABILITY_BENCH_BASELINE:-crates/bench/BENCH_fig5_durability.baseline.json}"
    run_step "bench smoke (durability fsync-policy sweep vs ${DURABILITY_BASELINE})" \
        target/release/fig5_throughput --durability --requests 2000 \
        --json BENCH_fig5_durability.json \
        --baseline "$DURABILITY_BASELINE"
    # The query-planner gate: query_paths drives the index-assisted fast
    # paths (top-N pushdown, MIN/MAX endpoint probe, COUNT shortcut,
    # IN-list probes) against the forced-seq-scan reference on a RUBiS-
    # shaped items table. The >= 3x top-N-vs-seq-scan floor is enforced
    # in-binary on every host; the baseline comparison additionally gates
    # the index_topn leg ("thread" index 5) at the standard 20% ceiling
    # on hosts matching the baseline's CPU count.
    QUERY_PATHS_BASELINE="${QUERY_PATHS_BENCH_BASELINE:-crates/bench/BENCH_query_paths.baseline.json}"
    run_step "bench smoke (query_paths fast paths vs ${QUERY_PATHS_BASELINE})" \
        target/release/query_paths --requests 2000 \
        --json BENCH_query_paths.json \
        --baseline "$QUERY_PATHS_BASELINE"
    # The instrumentation-overhead gate: cache_scaling's wire-path A/B
    # phase runs a metrics-on and a metrics-off txcached in adjacent pairs
    # and gates the median paired per-op cost ratio at <= 5%. This
    # invocation deliberately omits --skip-tcp (the phase needs the wire
    # path) and carries no baseline — it is a self-contained A/B gate.
    run_step "bench smoke (instrumentation overhead <= 5%, wire A/B)" \
        target/release/cache_scaling --threads 1 --requests 10000 \
        --overhead-gate
fi

print_summary
echo "CI gate passed in ${SECONDS}s."
