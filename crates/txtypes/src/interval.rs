//! Validity intervals (§4.1, §5.2).
//!
//! A validity interval describes the range of database states (identified by
//! commit timestamps) over which some result — a tuple, a query result, or a
//! cached application object — was the *current* result. Its lower bound is
//! the commit timestamp of the transaction that made the result valid; its
//! upper bound, if present, is the commit timestamp of the first later
//! transaction that changed it. An interval with no upper bound is
//! *still valid*: it reflects the latest database state and will be truncated
//! by an invalidation when the underlying data changes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::timestamp::Timestamp;

/// The range of commit timestamps over which a value was current.
///
/// The interval is inclusive of `lower` and exclusive of `upper`: a value that
/// became valid at commit 46 and was invalidated by commit 53 is valid at
/// timestamps 46..=52 and is written `[46, 53)`. A still-valid entry has
/// `upper == None` and is written `[46, ∞)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValidityInterval {
    /// Commit timestamp of the transaction that made the value valid.
    pub lower: Timestamp,
    /// Commit timestamp of the first transaction that invalidated the value,
    /// or `None` if the value is still valid.
    pub upper: Option<Timestamp>,
}

impl ValidityInterval {
    /// An interval covering every timestamp; the identity for intersection.
    pub const ALL: ValidityInterval = ValidityInterval {
        lower: Timestamp::ZERO,
        upper: None,
    };

    /// Creates a bounded interval `[lower, upper)`.
    ///
    /// Returns `None` if `upper <= lower` (an empty interval).
    #[must_use]
    pub fn bounded(lower: Timestamp, upper: Timestamp) -> Option<ValidityInterval> {
        if upper <= lower {
            None
        } else {
            Some(ValidityInterval {
                lower,
                upper: Some(upper),
            })
        }
    }

    /// Creates a still-valid (unbounded) interval `[lower, ∞)`.
    #[must_use]
    pub fn unbounded(lower: Timestamp) -> ValidityInterval {
        ValidityInterval { lower, upper: None }
    }

    /// Creates an interval containing exactly one timestamp.
    #[must_use]
    pub fn point(ts: Timestamp) -> ValidityInterval {
        ValidityInterval {
            lower: ts,
            upper: Some(ts.next()),
        }
    }

    /// Returns `true` if the interval has no upper bound (the value is still
    /// the current one).
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.upper.is_none()
    }

    /// Returns `true` if `ts` lies inside the interval.
    #[must_use]
    pub fn contains(&self, ts: Timestamp) -> bool {
        ts >= self.lower && self.upper.is_none_or(|u| ts < u)
    }

    /// Returns `true` if the two intervals share at least one timestamp.
    #[must_use]
    pub fn overlaps(&self, other: &ValidityInterval) -> bool {
        self.intersect(other).is_some()
    }

    /// Returns the intersection of two intervals, or `None` if they are
    /// disjoint.
    #[must_use]
    pub fn intersect(&self, other: &ValidityInterval) -> Option<ValidityInterval> {
        let lower = self.lower.max(other.lower);
        let upper = match (self.upper, other.upper) {
            (None, None) => None,
            (Some(u), None) | (None, Some(u)) => Some(u),
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        match upper {
            Some(u) if u <= lower => None,
            _ => Some(ValidityInterval { lower, upper }),
        }
    }

    /// Returns `true` if the interval intersects the (inclusive) timestamp
    /// range `[lo, hi]`.
    ///
    /// This is the form of query the cache server answers: the client library
    /// sends the bounds of its pin set and the server returns any entry whose
    /// validity interval intersects them (§4.1, §6.2).
    #[must_use]
    pub fn intersects_range(&self, lo: Timestamp, hi: Timestamp) -> bool {
        if hi < self.lower {
            return false;
        }
        self.upper.is_none_or(|u| lo < u)
    }

    /// Truncates the interval at `ts`: the value is considered invalid from
    /// `ts` onwards. Returns `None` if the truncation empties the interval.
    ///
    /// This is the operation a cache node applies when it processes an
    /// invalidation message (§4.2).
    #[must_use]
    pub fn truncate_at(&self, ts: Timestamp) -> Option<ValidityInterval> {
        if ts <= self.lower {
            return None;
        }
        let new_upper = match self.upper {
            Some(u) => u.min(ts),
            None => ts,
        };
        ValidityInterval::bounded(self.lower, new_upper)
    }

    /// Returns the interval's width in commit timestamps, or `None` when
    /// unbounded. Useful for statistics and eviction heuristics.
    #[must_use]
    pub fn width(&self) -> Option<u64> {
        self.upper.map(|u| u.as_u64() - self.lower.as_u64())
    }

    /// The interval's effective upper bound for lookup purposes, given the
    /// timestamp of the last invalidation processed so far.
    ///
    /// Still-valid items are treated "as though they have an upper validity
    /// bound equal to the timestamp of the last invalidation received prior to
    /// the lookup" (§4.2); this closes the race between a database update and
    /// its invalidation reaching the cache.
    #[must_use]
    pub fn effective_upper(&self, last_invalidation: Timestamp) -> Timestamp {
        match self.upper {
            Some(u) => u,
            None => last_invalidation.next().max(self.lower.next()),
        }
    }
}

impl fmt::Display for ValidityInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.upper {
            Some(u) => write!(f, "[{}, {})", self.lower.as_u64(), u.as_u64()),
            None => write!(f, "[{}, ∞)", self.lower.as_u64()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: u64, hi: u64) -> ValidityInterval {
        ValidityInterval::bounded(Timestamp(lo), Timestamp(hi)).expect("non-empty")
    }

    #[test]
    fn bounded_rejects_empty() {
        assert!(ValidityInterval::bounded(Timestamp(5), Timestamp(5)).is_none());
        assert!(ValidityInterval::bounded(Timestamp(6), Timestamp(5)).is_none());
        assert!(ValidityInterval::bounded(Timestamp(5), Timestamp(6)).is_some());
    }

    #[test]
    fn contains_respects_half_open_bounds() {
        let iv = b(46, 53);
        assert!(!iv.contains(Timestamp(45)));
        assert!(iv.contains(Timestamp(46)));
        assert!(iv.contains(Timestamp(52)));
        assert!(!iv.contains(Timestamp(53)));

        let open = ValidityInterval::unbounded(Timestamp(46));
        assert!(open.contains(Timestamp(1_000_000)));
        assert!(!open.contains(Timestamp(45)));
    }

    #[test]
    fn point_contains_exactly_one() {
        let p = ValidityInterval::point(Timestamp(9));
        assert!(p.contains(Timestamp(9)));
        assert!(!p.contains(Timestamp(8)));
        assert!(!p.contains(Timestamp(10)));
    }

    #[test]
    fn intersect_bounded_bounded() {
        assert_eq!(b(10, 20).intersect(&b(15, 30)), Some(b(15, 20)));
        assert_eq!(b(10, 20).intersect(&b(20, 30)), None);
        assert_eq!(b(10, 20).intersect(&b(0, 5)), None);
        assert_eq!(b(10, 20).intersect(&b(10, 20)), Some(b(10, 20)));
    }

    #[test]
    fn intersect_with_unbounded() {
        let open = ValidityInterval::unbounded(Timestamp(15));
        assert_eq!(b(10, 20).intersect(&open), Some(b(15, 20)));
        assert_eq!(
            open.intersect(&ValidityInterval::unbounded(Timestamp(12))),
            Some(ValidityInterval::unbounded(Timestamp(15)))
        );
        assert_eq!(b(10, 15).intersect(&open), None);
    }

    #[test]
    fn intersect_is_commutative() {
        let cases = [
            (b(10, 20), b(15, 30)),
            (b(1, 2), b(2, 3)),
            (ValidityInterval::unbounded(Timestamp(5)), b(1, 9)),
        ];
        for (x, y) in cases {
            assert_eq!(x.intersect(&y), y.intersect(&x));
        }
    }

    #[test]
    fn intersects_range_inclusive() {
        let iv = b(46, 53);
        assert!(iv.intersects_range(Timestamp(52), Timestamp(60)));
        assert!(!iv.intersects_range(Timestamp(53), Timestamp(60)));
        assert!(iv.intersects_range(Timestamp(40), Timestamp(46)));
        assert!(!iv.intersects_range(Timestamp(40), Timestamp(45)));
        let open = ValidityInterval::unbounded(Timestamp(46));
        assert!(open.intersects_range(Timestamp(100), Timestamp(200)));
    }

    #[test]
    fn truncate_at_shortens_or_empties() {
        let open = ValidityInterval::unbounded(Timestamp(46));
        assert_eq!(open.truncate_at(Timestamp(53)), Some(b(46, 53)));
        assert_eq!(open.truncate_at(Timestamp(46)), None);
        assert_eq!(b(46, 53).truncate_at(Timestamp(50)), Some(b(46, 50)));
        assert_eq!(b(46, 53).truncate_at(Timestamp(60)), Some(b(46, 53)));
        assert_eq!(b(46, 53).truncate_at(Timestamp(40)), None);
    }

    #[test]
    fn effective_upper_closes_invalidation_race() {
        let open = ValidityInterval::unbounded(Timestamp(46));
        // Last invalidation seen was 50 → treat as valid through 50 inclusive.
        assert_eq!(open.effective_upper(Timestamp(50)), Timestamp(51));
        // Never below lower + 1, so the interval is never empty.
        assert_eq!(open.effective_upper(Timestamp(10)), Timestamp(47));
        assert_eq!(b(46, 53).effective_upper(Timestamp(100)), Timestamp(53));
    }

    #[test]
    fn width_and_display() {
        assert_eq!(b(46, 53).width(), Some(7));
        assert_eq!(ValidityInterval::unbounded(Timestamp(3)).width(), None);
        assert_eq!(b(46, 53).to_string(), "[46, 53)");
        assert_eq!(
            ValidityInterval::unbounded(Timestamp(3)).to_string(),
            "[3, ∞)"
        );
    }
}
