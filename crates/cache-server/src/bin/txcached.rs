//! `txcached` — a standalone TxCache cache node.
//!
//! Hosts one versioned cache node behind the `wire` TCP protocol, the
//! deployment unit of the paper's cache tier (§4, §7). Application servers
//! reach it through the `txcache` client library's remote backend; the
//! database's invalidation stream reaches it as pushed
//! `InvalidationBatch` frames.
//!
//! ```text
//! txcached [--addr 127.0.0.1:11222] [--capacity-mb 64] [--name NAME]
//!          [--shards N] [--stats-every-secs N]
//! txcached --ping ADDR     # liveness probe: exit 0 if ADDR answers a Ping
//! ```
//!
//! With `--addr 127.0.0.1:0` the kernel picks a free port; the bound address
//! is printed on the first line of stdout (`txcached listening on ADDR`), so
//! scripts (see `ci.sh --net-smoke`) can scrape it.

use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

use cache_server::{NodeConfig, TxcachedServer};
use wire::{FramedStream, Request, Response};

struct Options {
    addr: String,
    capacity_mb: usize,
    name: String,
    shards: usize,
    stats_every_secs: u64,
    ping: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: txcached [--addr HOST:PORT] [--capacity-mb N] [--name NAME] \
         [--shards N] [--stats-every-secs N] | --ping HOST:PORT"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let mut options = Options {
        addr: "127.0.0.1:11222".to_string(),
        capacity_mb: 64,
        name: "txcached-0".to_string(),
        shards: NodeConfig::default().shards,
        stats_every_secs: 0,
        ping: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => options.addr = value("--addr"),
            "--capacity-mb" => {
                options.capacity_mb = value("--capacity-mb").parse().unwrap_or_else(|_| usage())
            }
            "--name" => options.name = value("--name"),
            "--shards" => {
                options.shards = value("--shards").parse().unwrap_or_else(|_| usage());
            }
            "--stats-every-secs" => {
                options.stats_every_secs = value("--stats-every-secs")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--ping" => options.ping = Some(value("--ping")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    options
}

/// Connects to a running node and checks that it answers a `Ping`.
fn ping(addr: &str) -> ExitCode {
    let probe = || -> wire::Result<()> {
        let stream = TcpStream::connect(addr).map_err(wire::WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .map_err(wire::WireError::Io)?;
        let mut conn = FramedStream::new(stream);
        match conn
            .call(&Request::Ping { nonce: 0xC0FFEE })?
            .into_result()?
        {
            Response::Pong { nonce: 0xC0FFEE } => Ok(()),
            other => Err(wire::WireError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected reply: {other:?}"),
            ))),
        }
    };
    match probe() {
        Ok(()) => {
            println!("txcached at {addr} is alive");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ping {addr} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let options = parse_options();
    if let Some(addr) = &options.ping {
        return ping(addr);
    }

    let server = match TxcachedServer::bind(
        &options.addr,
        options.name.clone(),
        NodeConfig {
            capacity_bytes: options.capacity_mb << 20,
            shards: options.shards,
            ..NodeConfig::default()
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("txcached: failed to bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("txcached listening on {}", server.local_addr());
    println!(
        "txcached node={} capacity={} MB shards={}",
        options.name,
        options.capacity_mb,
        options.shards.max(1)
    );
    // Line-buffered stdout only flushes on newline when attached to a pipe
    // after the process keeps running; force it so scrapers see the address.
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let interval = if options.stats_every_secs == 0 {
        Duration::from_secs(3600)
    } else {
        Duration::from_secs(options.stats_every_secs)
    };
    loop {
        std::thread::sleep(interval);
        if options.stats_every_secs > 0 {
            let s = server.stats();
            let c = server.cache_stats();
            println!(
                "txcached stats: conns={} reqs={} in={}B out={}B hits={} misses={} \
                 entries_bytes={} invalidation_batches={}",
                s.connections_accepted,
                s.requests,
                s.bytes_in,
                s.bytes_out,
                c.hits,
                c.misses(),
                c.used_bytes,
                s.invalidation_batches,
            );
            for shard in server.shard_stats() {
                println!(
                    "txcached shard[{}]: {} reads ({} waited), {} writes ({} waited), \
                     {:.2}% contended, {} entries {}B, evictions lru={} stale={}",
                    shard.shard,
                    shard.read_locks,
                    shard.read_waits,
                    shard.write_locks,
                    shard.write_waits,
                    shard.contention_rate() * 100.0,
                    shard.entries,
                    shard.used_bytes,
                    shard.lru_evictions,
                    shard.staleness_evictions,
                );
            }
            let _ = std::io::stdout().flush();
        }
    }
}
