//! The named metrics registry and its snapshot/rendering types.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::{Gauge, Histogram, HistogramSnapshot, StripedCounter};

/// A named bank of counters, gauges, and histograms.
///
/// Registration (first lookup of a name) takes a write lock; subsequent
/// lookups take a read lock and hot paths hold the returned [`Arc`] handle
/// instead, so steady-state updates never touch the registry lock at all.
/// Names are dot-separated `component.subject.unit` strings (see the crate
/// docs); the maps are ordered so snapshots and renderings are
/// deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<StripedCounter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl Registry {
    /// A fresh empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use. Hold the handle;
    /// updates through it are lock-free.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<StripedCounter> {
        if let Some(c) = self.inner.read().expect("registry lock").counters.get(name) {
            return Arc::clone(c);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(StripedCounter::default())),
        )
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.inner.read().expect("registry lock").gauges.get(name) {
            return Arc::clone(g);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .inner
            .read()
            .expect("registry lock")
            .histograms
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut inner = self.inner.write().expect("registry lock");
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().expect("registry lock");
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A plain-data copy of a [`Registry`]: what a `Metrics` wire request
/// returns and what the CLI renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, distribution)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The named counter's value, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The named gauge's level, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The named histogram's distribution, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// A human-readable dump: one line per counter/gauge, one summary line
    /// per histogram (count, mean, p50/p90/p99, max).
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<40} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<40} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<40} count={} mean={:.1} p50={} p90={} p99={} max={}\n",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.percentile(1.0),
            ));
        }
        out
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// series, histograms as cumulative `_bucket{le="..."}` series plus
    /// `_sum` and `_count`. Dots in metric names become underscores.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mangle = |name: &str| name.replace('.', "_");
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = mangle(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = mangle(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = mangle(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (_, upper, count) in h.nonzero_buckets() {
                cumulative += count;
                out.push_str(&format!("{name}_bucket{{le=\"{upper}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("server.req.get");
        let b = r.counter("server.req.get");
        a.add(3);
        b.bump();
        assert_eq!(r.counter("server.req.get").get(), 4);
        r.gauge("server.queue.depth").set(9);
        r.histogram("server.req.get.us").record(17);
        let snap = r.snapshot();
        assert_eq!(snap.counter("server.req.get"), Some(4));
        assert_eq!(snap.gauge("server.queue.depth"), Some(9));
        assert_eq!(snap.histogram("server.req.get.us").unwrap().count, 1);
        assert_eq!(snap.counter("no.such"), None);
    }

    #[test]
    fn concurrent_registration_and_increments_agree() {
        // Every thread looks the counters up by name while others are
        // registering new names — the registration path must never lose an
        // increment or hand out divergent handles.
        let r = Registry::new();
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let r = &r;
                scope.spawn(move || {
                    let shared = r.counter("stress.shared");
                    for i in 0..per_thread {
                        shared.bump();
                        // Re-lookup interleaved with fresh registrations.
                        r.counter(&format!("stress.thread.{t}")).bump();
                        if i % 64 == 0 {
                            r.histogram("stress.lat.us").record(i);
                        }
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(
            snap.counter("stress.shared"),
            Some(threads as u64 * per_thread)
        );
        for t in 0..threads {
            assert_eq!(
                snap.counter(&format!("stress.thread.{t}")),
                Some(per_thread)
            );
        }
        let lat = snap.histogram("stress.lat.us").unwrap();
        assert_eq!(lat.count, threads as u64 * per_thread.div_ceil(64));
    }

    #[test]
    fn renderings_cover_every_metric() {
        let r = Registry::new();
        r.counter("a.hits").add(2);
        r.gauge("a.depth").set(-3);
        for v in [10, 100, 1000] {
            r.histogram("a.lat.us").record(v);
        }
        let snap = r.snapshot();
        let human = snap.render_human();
        assert!(human.contains("a.hits"));
        assert!(human.contains("p99="));
        let prom = snap.render_prometheus();
        assert!(prom.contains("a_hits 2"));
        assert!(prom.contains("a_depth -3"));
        assert!(prom.contains("a_lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(prom.contains("a_lat_us_sum 1110"));
        assert!(prom.contains("a_lat_us_count 3"));
    }
}
