//! Client-library statistics and per-transaction commit reports.

use mvdb::PageCounts;
use obs::StripedCounter;
use serde::{Deserialize, Serialize};
use txtypes::Timestamp;

/// Counters accumulated by a [`crate::TxCache`] handle across transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientStats {
    /// Read-only transactions begun.
    pub ro_transactions: u64,
    /// Read/write transactions begun.
    pub rw_transactions: u64,
    /// Cacheable-function invocations.
    pub cacheable_calls: u64,
    /// Cacheable calls satisfied from the cache.
    pub cache_hits: u64,
    /// Cacheable calls that had to execute their implementation.
    pub cache_misses: u64,
    /// Database queries issued (both inside and outside cacheable functions).
    pub db_queries: u64,
    /// Snapshots newly pinned by this library instance.
    pub new_pins: u64,
    /// Transactions that reused an existing pinned snapshot.
    pub reused_pins: u64,
    /// Transactions that committed.
    pub commits: u64,
    /// Transactions that aborted.
    pub aborts: u64,
    /// Inserts that had to *block* on collecting pipelined put acks
    /// because a node's pipeline hit its bound with no acks already
    /// received. A healthy multiplexed connection absorbs acks
    /// opportunistically, so this staying near zero is the signal that the
    /// put pipeline is not stalling foreground traffic.
    pub put_pipeline_stalls: u64,
    /// Reads retried on a further replica after the preferred one failed
    /// (remote backend with replication only). Nonzero means the replica
    /// tier absorbed node failures that would otherwise have been misses.
    pub replica_fallbacks: u64,
    /// Batches a cache node refused because this client routed them on a
    /// stale ring-membership epoch (remote backend only). A burst is
    /// expected around a membership change, then the counter should go
    /// quiet once the client's ring view catches up.
    pub wrong_epoch_redirects: u64,
}

impl ClientStats {
    /// Cache hit rate over cacheable calls, in [0, 1].
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.cacheable_calls == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cacheable_calls as f64
        }
    }
}

/// The live counter bank behind [`ClientStats`].
///
/// Every field is a cache-line-striped relaxed atomic (an
/// [`obs::StripedCounter`]), so hot-path readers on different
/// application-server threads never serialize on a stats mutex just to bump
/// a counter. Reads sum the stripes: monotonic, not linearizable — telemetry
/// semantics, exactly like the database's own counters.
#[derive(Debug, Default)]
pub struct AtomicClientStats {
    /// Read-only transactions begun.
    pub ro_transactions: StripedCounter,
    /// Read/write transactions begun.
    pub rw_transactions: StripedCounter,
    /// Cacheable-function invocations.
    pub cacheable_calls: StripedCounter,
    /// Cacheable calls satisfied from the cache.
    pub cache_hits: StripedCounter,
    /// Cacheable calls that had to execute their implementation.
    pub cache_misses: StripedCounter,
    /// Database queries issued.
    pub db_queries: StripedCounter,
    /// Snapshots newly pinned by this library instance.
    pub new_pins: StripedCounter,
    /// Transactions that reused an existing pinned snapshot.
    pub reused_pins: StripedCounter,
    /// Transactions that committed.
    pub commits: StripedCounter,
    /// Transactions that aborted.
    pub aborts: StripedCounter,
    /// Inserts that blocked on put-ack collection (see
    /// [`ClientStats::put_pipeline_stalls`]). The remote backend also
    /// counts its own stalls; [`crate::TxCache::stats`] merges both.
    pub put_pipeline_stalls: StripedCounter,
}

impl AtomicClientStats {
    /// Takes a consistent-enough snapshot of the counters (individual loads
    /// are relaxed; cross-counter skew is acceptable for telemetry).
    #[must_use]
    pub fn snapshot(&self) -> ClientStats {
        ClientStats {
            ro_transactions: self.ro_transactions.get(),
            rw_transactions: self.rw_transactions.get(),
            cacheable_calls: self.cacheable_calls.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            db_queries: self.db_queries.get(),
            new_pins: self.new_pins.get(),
            reused_pins: self.reused_pins.get(),
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            put_pipeline_stalls: self.put_pipeline_stalls.get(),
            // Replica fallbacks and wrong-epoch redirects live in the
            // backend's own counters; `TxCache::stats` merges them in.
            replica_fallbacks: 0,
            wrong_epoch_redirects: 0,
        }
    }
}

/// Everything the library reports back when a transaction finishes; the
/// experiment harness uses these to drive its cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitInfo {
    /// The timestamp the transaction ran at (its snapshot for read-only
    /// transactions, its commit timestamp for read/write transactions).
    pub timestamp: Timestamp,
    /// Whether the transaction was read-only.
    pub read_only: bool,
    /// Database queries the transaction issued.
    pub db_queries: u64,
    /// Simulated database page activity caused by those queries.
    pub db_pages: PageCounts,
    /// Cacheable calls served from the cache.
    pub cache_hits: u64,
    /// Cacheable calls that executed their implementation.
    pub cache_misses: u64,
    /// Rows written (read/write transactions only).
    pub rows_written: u64,
}

impl CommitInfo {
    /// Total cacheable calls made by the transaction.
    #[must_use]
    pub fn cacheable_calls(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_calls() {
        assert_eq!(ClientStats::default().hit_rate(), 0.0);
        let s = ClientStats {
            cacheable_calls: 4,
            cache_hits: 3,
            ..ClientStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn atomic_stats_snapshot_reflects_bumps() {
        let live = AtomicClientStats::default();
        live.cacheable_calls.bump();
        live.cacheable_calls.bump();
        live.cache_hits.bump();
        live.db_queries.add(3);
        let snap = live.snapshot();
        assert_eq!(snap.cacheable_calls, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.db_queries, 3);
        assert_eq!(snap.commits, 0);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn commit_info_totals() {
        let info = CommitInfo {
            timestamp: Timestamp(5),
            read_only: true,
            db_queries: 2,
            db_pages: PageCounts::default(),
            cache_hits: 3,
            cache_misses: 1,
            rows_written: 0,
        };
        assert_eq!(info.cacheable_calls(), 4);
    }
}
