//! The RUBiS application ported to TxCache (§7.1).
//!
//! Read-only code paths are built from *cacheable functions* at two
//! granularities, exactly as in the paper's port:
//!
//! * fine-grained accessors (`get_item`, `get_user`, `auth_user`, bid
//!   histories, …) that bundle one or two queries into an application object
//!   and can be shared between pages;
//! * page-granularity functions (`page_view_item`, `page_search_*`, …) that
//!   render pseudo-HTML and *nest* calls to the fine-grained functions,
//!   exercising the §6.3 nested-call machinery.
//!
//! List pages obtain per-item details by calling the cacheable `get_item`
//! rather than joining in the database, mirroring the modification described
//! in §7.1. Write paths (placing bids, registering users/items, commenting)
//! run in read/write transactions that bypass the cache.

use std::collections::HashMap;
use std::sync::Arc;

use mvdb::{Aggregate, Predicate, SelectQuery, SortOrder, Value};
use parking_lot::Mutex;
use txcache::{Transaction, TxCache};
use txtypes::{Error, Result, Staleness};

use crate::model::{BidInfo, CommentInfo, ItemDetails, ItemSummary, RenderedPage, UserInfo};

/// Number of items shown per search-results page.
pub const ITEMS_PER_PAGE: usize = 20;

/// The RUBiS application: a thin object holding the TxCache handle.
#[derive(Clone)]
pub struct RubisApp {
    txcache: Arc<TxCache>,
    /// Next primary key per table, seeded lazily from `MAX(id)` and then
    /// allocated locally — the equivalent of the SQL sequences the original
    /// RUBiS schema uses, avoiding a table scan on every insert.
    id_allocator: Arc<Mutex<HashMap<String, i64>>>,
}

impl RubisApp {
    /// Creates the application on top of a TxCache library instance.
    #[must_use]
    pub fn new(txcache: Arc<TxCache>) -> RubisApp {
        RubisApp {
            txcache,
            id_allocator: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The underlying TxCache handle.
    #[must_use]
    pub fn txcache(&self) -> &Arc<TxCache> {
        &self.txcache
    }

    /// Begins a read-only transaction with the given staleness limit.
    pub fn begin_ro(&self, staleness: Staleness) -> Result<Transaction<'_>> {
        self.txcache.begin_ro(staleness)
    }

    /// Begins a read/write transaction.
    pub fn begin_rw(&self) -> Result<Transaction<'_>> {
        self.txcache.begin_rw()
    }

    // ==================================================================
    // Fine-grained cacheable functions
    // ==================================================================

    /// Looks up a user by id.
    pub fn get_user(&self, tx: &mut Transaction<'_>, user_id: i64) -> Result<Option<UserInfo>> {
        tx.cached("get_user", &user_id, |tx| {
            let q = SelectQuery::table("users").filter(Predicate::eq("id", user_id));
            let r = tx.query(&q)?;
            if r.is_empty() {
                return Ok(None);
            }
            Ok(Some(UserInfo {
                id: user_id,
                nickname: text(&r, 0, "nickname")?,
                rating: int(&r, 0, "rating")?,
                balance: float(&r, 0, "balance")?,
                region: int(&r, 0, "region")?,
            }))
        })
    }

    /// Authenticates a user by nickname, returning their id (§7.1 caches
    /// login authentication).
    pub fn auth_user(&self, tx: &mut Transaction<'_>, nickname: &str) -> Result<Option<i64>> {
        tx.cached("auth_user", &nickname.to_string(), |tx| {
            let q = SelectQuery::table("users")
                .filter(Predicate::eq("nickname", nickname))
                .select(vec!["id"]);
            let r = tx.query(&q)?;
            if r.is_empty() {
                Ok(None)
            } else {
                Ok(Some(int(&r, 0, "id")?))
            }
        })
    }

    /// Looks up an item by id, consulting both the active and the completed
    /// auctions tables (§7.1: "looking up an item requires examining both the
    /// active items table and the old items table").
    pub fn get_item(&self, tx: &mut Transaction<'_>, item_id: i64) -> Result<Option<ItemDetails>> {
        tx.cached("get_item", &item_id, |tx| {
            for (table, closed) in [("items", false), ("old_items", true)] {
                let q = SelectQuery::table(table).filter(Predicate::eq("id", item_id));
                let r = tx.query(&q)?;
                if !r.is_empty() {
                    return Ok(Some(ItemDetails {
                        id: item_id,
                        name: text(&r, 0, "name")?,
                        description: text(&r, 0, "description")?,
                        seller: int(&r, 0, "seller")?,
                        category: int(&r, 0, "category")?,
                        initial_price: float(&r, 0, "initial_price")?,
                        current_price: float(&r, 0, "current_price")?,
                        nb_of_bids: int(&r, 0, "nb_of_bids")?,
                        end_date: int(&r, 0, "end_date")?,
                        closed,
                    }));
                }
            }
            Ok(None)
        })
    }

    /// Returns the bid history of an item, most recent first.
    pub fn get_bid_history(&self, tx: &mut Transaction<'_>, item_id: i64) -> Result<Vec<BidInfo>> {
        tx.cached("get_bid_history", &item_id, |tx| {
            let q = SelectQuery::table("bids")
                .filter(Predicate::eq("item_id", item_id))
                .order_by("date", SortOrder::Desc);
            let r = tx.query(&q)?;
            (0..r.len())
                .map(|i| {
                    Ok(BidInfo {
                        id: int(&r, i, "id")?,
                        user_id: int(&r, i, "user_id")?,
                        amount: float(&r, i, "bid")?,
                        date: int(&r, i, "date")?,
                    })
                })
                .collect()
        })
    }

    /// Returns the comments left on a user's profile.
    pub fn get_user_comments(
        &self,
        tx: &mut Transaction<'_>,
        user_id: i64,
    ) -> Result<Vec<CommentInfo>> {
        tx.cached("get_user_comments", &user_id, |tx| {
            let q = SelectQuery::table("comments").filter(Predicate::eq("to_user", user_id));
            let r = tx.query(&q)?;
            (0..r.len())
                .map(|i| {
                    Ok(CommentInfo {
                        id: int(&r, i, "id")?,
                        from_user: int(&r, i, "from_user")?,
                        rating: int(&r, i, "rating")?,
                        text: text(&r, i, "comment")?,
                    })
                })
                .collect()
        })
    }

    /// Returns all categories (id, name).
    pub fn get_categories(&self, tx: &mut Transaction<'_>) -> Result<Vec<(i64, String)>> {
        tx.cached("get_categories", &(), |tx| {
            let q = SelectQuery::table("categories").order_by("id", SortOrder::Asc);
            let r = tx.query(&q)?;
            (0..r.len())
                .map(|i| Ok((int(&r, i, "id")?, text(&r, i, "name")?)))
                .collect()
        })
    }

    /// Returns all regions (id, name).
    pub fn get_regions(&self, tx: &mut Transaction<'_>) -> Result<Vec<(i64, String)>> {
        tx.cached("get_regions", &(), |tx| {
            let q = SelectQuery::table("regions").order_by("id", SortOrder::Asc);
            let r = tx.query(&q)?;
            (0..r.len())
                .map(|i| Ok((int(&r, i, "id")?, text(&r, i, "name")?)))
                .collect()
        })
    }

    /// Returns one page of active items in a category. Item details are
    /// fetched through the cacheable [`get_item`](Self::get_item) so they can
    /// be shared with other pages (§7.1).
    pub fn search_items_by_category(
        &self,
        tx: &mut Transaction<'_>,
        category: i64,
        page: usize,
    ) -> Result<Vec<ItemSummary>> {
        let ids: Vec<i64> = tx.cached("category_item_ids", &(category, page), |tx| {
            let q = SelectQuery::table("items")
                .filter(Predicate::eq("category", category))
                .select(vec!["id"])
                .order_by("id", SortOrder::Asc)
                .limit((page + 1) * ITEMS_PER_PAGE);
            let r = tx.query(&q)?;
            let start = (page * ITEMS_PER_PAGE).min(r.len());
            (start..r.len()).map(|i| int(&r, i, "id")).collect()
        })?;
        self.summaries_for(tx, &ids)
    }

    /// Returns one page of active items for sale in a region and category,
    /// using the auxiliary `item_region_category` table added in §7.1.
    pub fn search_items_by_region(
        &self,
        tx: &mut Transaction<'_>,
        region: i64,
        category: i64,
    ) -> Result<Vec<ItemSummary>> {
        let ids: Vec<i64> = tx.cached("region_item_ids", &(region, category), |tx| {
            let q = SelectQuery::table("item_region_category")
                .filter(Predicate::eq("region", region).and(Predicate::eq("category", category)))
                .select(vec!["item_id"])
                .order_by("item_id", SortOrder::Asc)
                .limit(ITEMS_PER_PAGE);
            let r = tx.query(&q)?;
            (0..r.len()).map(|i| int(&r, i, "item_id")).collect()
        })?;
        self.summaries_for(tx, &ids)
    }

    /// Returns the `count` newest active auctions site-wide (a "latest
    /// items" feed). Item ids are allocated in insertion order, so the query
    /// is served by the ORDER BY + LIMIT index pushdown
    /// (`AccessPath::IndexOrdered` walking `items.id` descending) at
    /// O(count · log n) instead of a full scan and sort.
    pub fn browse_newest_items(
        &self,
        tx: &mut Transaction<'_>,
        count: usize,
    ) -> Result<Vec<ItemSummary>> {
        let ids: Vec<i64> = tx.cached("newest_item_ids", &count, |tx| {
            let q = SelectQuery::table("items")
                .select(vec!["id"])
                .order_by("id", SortOrder::Desc)
                .limit(count);
            let r = tx.query(&q)?;
            (0..r.len()).map(|i| int(&r, i, "id")).collect()
        })?;
        self.summaries_for(tx, &ids)
    }

    /// Returns one page of active items across several categories at once,
    /// planned as per-category index probes (`AccessPath::IndexIn`). The
    /// probes yield one keyed `items:category=N` tag per probed category, so
    /// the cached page is invalidated only by writes to those categories —
    /// not by every item insert, as a wildcard-tagged scan would be.
    pub fn search_items_by_categories(
        &self,
        tx: &mut Transaction<'_>,
        categories: &[i64],
    ) -> Result<Vec<ItemSummary>> {
        let ids: Vec<i64> = tx.cached("multi_category_item_ids", &categories.to_vec(), |tx| {
            let q = SelectQuery::table("items")
                .filter(Predicate::in_list("category", categories.iter().copied()))
                .select(vec!["id"])
                .order_by("id", SortOrder::Asc)
                .limit(ITEMS_PER_PAGE);
            let r = tx.query(&q)?;
            (0..r.len()).map(|i| int(&r, i, "id")).collect()
        })?;
        self.summaries_for(tx, &ids)
    }

    fn summaries_for(&self, tx: &mut Transaction<'_>, ids: &[i64]) -> Result<Vec<ItemSummary>> {
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(item) = self.get_item(tx, *id)? {
                out.push(ItemSummary {
                    id: item.id,
                    name: item.name,
                    current_price: item.current_price,
                    nb_of_bids: item.nb_of_bids,
                });
            }
        }
        Ok(out)
    }

    // ==================================================================
    // Page-granularity cacheable functions
    // ==================================================================

    /// The home page: the category and region lists.
    pub fn page_home(&self, tx: &mut Transaction<'_>) -> Result<RenderedPage> {
        tx.cached("page_home", &(), |tx| {
            let categories = self.get_categories(tx)?;
            let regions = self.get_regions(tx)?;
            Ok(RenderedPage::new(
                "RUBiS",
                format!(
                    "<ul>{}</ul><ul>{}</ul>",
                    render_list(&categories),
                    render_list(&regions)
                ),
            ))
        })
    }

    /// The browse-categories page.
    pub fn page_browse_categories(&self, tx: &mut Transaction<'_>) -> Result<RenderedPage> {
        tx.cached("page_browse_categories", &(), |tx| {
            let categories = self.get_categories(tx)?;
            Ok(RenderedPage::new("Categories", render_list(&categories)))
        })
    }

    /// The browse-regions page.
    pub fn page_browse_regions(&self, tx: &mut Transaction<'_>) -> Result<RenderedPage> {
        tx.cached("page_browse_regions", &(), |tx| {
            let regions = self.get_regions(tx)?;
            Ok(RenderedPage::new("Regions", render_list(&regions)))
        })
    }

    /// A page of search results within a category.
    pub fn page_search_items_in_category(
        &self,
        tx: &mut Transaction<'_>,
        category: i64,
        page: usize,
    ) -> Result<RenderedPage> {
        tx.cached("page_search_category", &(category, page), |tx| {
            let items = self.search_items_by_category(tx, category, page)?;
            Ok(RenderedPage::new(
                format!("Items in category {category}"),
                render_items(&items),
            ))
        })
    }

    /// A page of search results within a region and category.
    pub fn page_search_items_in_region(
        &self,
        tx: &mut Transaction<'_>,
        region: i64,
        category: i64,
    ) -> Result<RenderedPage> {
        tx.cached("page_search_region", &(region, category), |tx| {
            let items = self.search_items_by_region(tx, region, category)?;
            Ok(RenderedPage::new(
                format!("Items in region {region}, category {category}"),
                render_items(&items),
            ))
        })
    }

    /// An item's detail page, including its seller.
    pub fn page_view_item(&self, tx: &mut Transaction<'_>, item_id: i64) -> Result<RenderedPage> {
        tx.cached("page_view_item", &item_id, |tx| {
            let Some(item) = self.get_item(tx, item_id)? else {
                return Ok(RenderedPage::new("Item not found", String::new()));
            };
            let seller = self.get_user(tx, item.seller)?;
            let seller_name = seller.map(|u| u.nickname).unwrap_or_default();
            Ok(RenderedPage::new(
                item.name.clone(),
                format!(
                    "<h1>{}</h1><p>{}</p><p>price {:.2} after {} bids, sold by {}</p>",
                    item.name, item.description, item.current_price, item.nb_of_bids, seller_name
                ),
            ))
        })
    }

    /// A user-info page: profile plus the comments left about them.
    pub fn page_view_user_info(
        &self,
        tx: &mut Transaction<'_>,
        user_id: i64,
    ) -> Result<RenderedPage> {
        tx.cached("page_view_user", &user_id, |tx| {
            let Some(user) = self.get_user(tx, user_id)? else {
                return Ok(RenderedPage::new("User not found", String::new()));
            };
            let comments = self.get_user_comments(tx, user_id)?;
            Ok(RenderedPage::new(
                user.nickname.clone(),
                format!(
                    "<h1>{}</h1><p>rating {}</p><p>{} comments</p>",
                    user.nickname,
                    user.rating,
                    comments.len()
                ),
            ))
        })
    }

    /// An item's bid-history page.
    pub fn page_view_bid_history(
        &self,
        tx: &mut Transaction<'_>,
        item_id: i64,
    ) -> Result<RenderedPage> {
        tx.cached("page_bid_history", &item_id, |tx| {
            let bids = self.get_bid_history(tx, item_id)?;
            let rows: String = bids
                .iter()
                .map(|b| format!("<tr><td>{}</td><td>{:.2}</td></tr>", b.user_id, b.amount))
                .collect();
            Ok(RenderedPage::new(
                format!("Bid history for item {item_id}"),
                format!("<table>{rows}</table>"),
            ))
        })
    }

    /// The "About Me" page: the requesting user's profile, comments, and the
    /// items they are currently bidding on.
    pub fn page_about_me(&self, tx: &mut Transaction<'_>, user_id: i64) -> Result<RenderedPage> {
        tx.cached("page_about_me", &user_id, |tx| {
            let Some(user) = self.get_user(tx, user_id)? else {
                return Ok(RenderedPage::new("User not found", String::new()));
            };
            let bids: Vec<i64> = {
                let q = SelectQuery::table("bids")
                    .filter(Predicate::eq("user_id", user_id))
                    .select(vec!["item_id"])
                    .limit(ITEMS_PER_PAGE);
                let r = tx.query(&q)?;
                (0..r.len())
                    .map(|i| int(&r, i, "item_id"))
                    .collect::<Result<_>>()?
            };
            let mut body = format!(
                "<h1>{}</h1><p>balance {:.2}</p>",
                user.nickname, user.balance
            );
            for item_id in bids {
                if let Some(item) = self.get_item(tx, item_id)? {
                    body.push_str(&format!(
                        "<p>bidding on {} at {:.2}</p>",
                        item.name, item.current_price
                    ));
                }
            }
            Ok(RenderedPage::new("About me", body))
        })
    }

    // ==================================================================
    // Write paths (read/write transactions, cache bypassed)
    // ==================================================================

    /// Places a bid on an item: inserts the bid and updates the item's bid
    /// count and current price.
    pub fn store_bid(
        &self,
        tx: &mut Transaction<'_>,
        user_id: i64,
        item_id: i64,
        amount: f64,
    ) -> Result<()> {
        let q = SelectQuery::table("items").filter(Predicate::eq("id", item_id));
        let item = tx.query(&q)?;
        if item.is_empty() {
            return Err(Error::Query(format!("no active item {item_id}")));
        }
        let nb = int(&item, 0, "nb_of_bids")?;
        let current = float(&item, 0, "current_price")?;
        let bid_id = self.next_id(tx, "bids")?;
        tx.insert(
            "bids",
            vec![
                Value::Int(bid_id),
                Value::Int(user_id),
                Value::Int(item_id),
                Value::Float(amount),
                Value::Int(bid_id),
            ],
        )?;
        tx.update(
            "items",
            &Predicate::eq("id", item_id),
            &[
                ("nb_of_bids".to_string(), Value::Int(nb + 1)),
                (
                    "current_price".to_string(),
                    Value::Float(current.max(amount)),
                ),
            ],
        )?;
        Ok(())
    }

    /// Stores a comment about a user and updates the target's rating (the
    /// §2.1 example of a non-obvious invalidation dependency).
    pub fn store_comment(
        &self,
        tx: &mut Transaction<'_>,
        from_user: i64,
        to_user: i64,
        item_id: i64,
        rating: i64,
        text_body: &str,
    ) -> Result<()> {
        let comment_id = self.next_id(tx, "comments")?;
        tx.insert(
            "comments",
            vec![
                Value::Int(comment_id),
                Value::Int(from_user),
                Value::Int(to_user),
                Value::Int(item_id),
                Value::Int(rating),
                Value::text(text_body),
            ],
        )?;
        let q = SelectQuery::table("users").filter(Predicate::eq("id", to_user));
        let r = tx.query(&q)?;
        if !r.is_empty() {
            let old = int(&r, 0, "rating")?;
            tx.update(
                "users",
                &Predicate::eq("id", to_user),
                &[("rating".to_string(), Value::Int(old + rating))],
            )?;
        }
        Ok(())
    }

    /// Records a buy-now purchase.
    pub fn store_buy_now(
        &self,
        tx: &mut Transaction<'_>,
        buyer: i64,
        item_id: i64,
        qty: i64,
    ) -> Result<()> {
        let id = self.next_id(tx, "buy_now")?;
        tx.insert(
            "buy_now",
            vec![
                Value::Int(id),
                Value::Int(buyer),
                Value::Int(item_id),
                Value::Int(qty),
                Value::Int(id),
            ],
        )?;
        Ok(())
    }

    /// Registers a new user and returns their id.
    pub fn register_user(
        &self,
        tx: &mut Transaction<'_>,
        nickname: &str,
        region: i64,
    ) -> Result<i64> {
        let id = self.next_id(tx, "users")?;
        tx.insert(
            "users",
            vec![
                Value::Int(id),
                Value::text(nickname),
                Value::text("password"),
                Value::Int(0),
                Value::Float(0.0),
                Value::Int(region),
            ],
        )?;
        Ok(id)
    }

    /// Registers a new auction item and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn register_item(
        &self,
        tx: &mut Transaction<'_>,
        seller: i64,
        category: i64,
        region: i64,
        name: &str,
        description: &str,
        initial_price: f64,
    ) -> Result<i64> {
        let id = self.next_id(tx, "items")?;
        tx.insert(
            "items",
            vec![
                Value::Int(id),
                Value::text(name),
                Value::text(description),
                Value::Int(seller),
                Value::Int(category),
                Value::Float(initial_price),
                Value::Float(initial_price),
                Value::Int(0),
                Value::Int(1_000_000 + id),
            ],
        )?;
        tx.insert(
            "item_region_category",
            vec![Value::Int(id), Value::Int(region), Value::Int(category)],
        )?;
        Ok(id)
    }

    /// Allocates the next id for `table`, behaving like a SQL sequence: the
    /// first allocation reads the current maximum, subsequent ones are local
    /// increments.
    fn next_id(&self, tx: &mut Transaction<'_>, table: &str) -> Result<i64> {
        let mut allocator = self.id_allocator.lock();
        if let Some(next) = allocator.get_mut(table) {
            *next += 1;
            return Ok(*next);
        }
        drop(allocator);
        let q = SelectQuery::table(table).aggregate(Aggregate::Max("id".into()));
        let r = tx.query(&q)?;
        let max = r.get(0, "max").ok().and_then(|v| v.as_int()).unwrap_or(0);
        let mut allocator = self.id_allocator.lock();
        let next = allocator.entry(table.to_string()).or_insert(max);
        *next = (*next).max(max) + 1;
        Ok(*next)
    }
}

// ----------------------------------------------------------------------
// Small result-extraction helpers
// ----------------------------------------------------------------------

fn int(r: &mvdb::QueryResult, row: usize, col: &str) -> Result<i64> {
    r.get(row, col)?
        .as_int()
        .ok_or_else(|| Error::Query(format!("column '{col}' is not an integer")))
}

fn float(r: &mvdb::QueryResult, row: usize, col: &str) -> Result<f64> {
    r.get(row, col)?
        .as_float()
        .ok_or_else(|| Error::Query(format!("column '{col}' is not numeric")))
}

fn text(r: &mvdb::QueryResult, row: usize, col: &str) -> Result<String> {
    Ok(r.get(row, col)?
        .as_text()
        .ok_or_else(|| Error::Query(format!("column '{col}' is not text")))?
        .to_string())
}

fn render_list(entries: &[(i64, String)]) -> String {
    entries
        .iter()
        .map(|(id, name)| format!("<li>{id}: {name}</li>"))
        .collect()
}

fn render_items(items: &[ItemSummary]) -> String {
    items
        .iter()
        .map(|i| {
            format!(
                "<li>{} — {:.2} ({} bids)</li>",
                i.name, i.current_price, i.nb_of_bids
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{create_tables, populate, RubisScale};
    use cache_server::CacheCluster;
    use mvdb::{AccessPath, Database, DbConfig};
    use pincushion::Pincushion;
    use txcache::{CacheMode, TxCacheConfig};
    use txtypes::SimClock;

    fn stack() -> (RubisApp, Arc<Database>) {
        let clock = SimClock::new();
        let db = Arc::new(Database::new(DbConfig::default(), clock.clone()));
        create_tables(&db).unwrap();
        populate(&db, &RubisScale::tiny(), 11).unwrap();
        let cache = Arc::new(CacheCluster::new(2, 16 << 20));
        let pincushion = Arc::new(Pincushion::new(Default::default(), clock.clone()));
        let txcache = Arc::new(TxCache::new(
            db.clone(),
            cache,
            pincushion,
            clock,
            TxCacheConfig {
                mode: CacheMode::Full,
                ..TxCacheConfig::default()
            },
        ));
        (RubisApp::new(txcache), db)
    }

    #[test]
    fn hot_queries_never_plan_a_seq_scan() {
        let (_, db) = stack();
        let hot: Vec<(&str, SelectQuery)> = vec![
            (
                "get_bid_history",
                SelectQuery::table("bids")
                    .filter(Predicate::eq("item_id", 1i64))
                    .order_by("date", SortOrder::Desc),
            ),
            (
                "page_about_me bids",
                SelectQuery::table("bids")
                    .filter(Predicate::eq("user_id", 1i64))
                    .select(vec!["item_id"])
                    .limit(ITEMS_PER_PAGE),
            ),
            (
                "search_items_by_category",
                SelectQuery::table("items")
                    .filter(Predicate::eq("category", 1i64))
                    .select(vec!["id"])
                    .order_by("id", SortOrder::Asc)
                    .limit(ITEMS_PER_PAGE),
            ),
            (
                "search_items_by_region",
                SelectQuery::table("item_region_category")
                    .filter(Predicate::eq("region", 1i64).and(Predicate::eq("category", 1i64)))
                    .select(vec!["item_id"])
                    .order_by("item_id", SortOrder::Asc)
                    .limit(ITEMS_PER_PAGE),
            ),
            (
                "get_categories",
                SelectQuery::table("categories").order_by("id", SortOrder::Asc),
            ),
            (
                "get_regions",
                SelectQuery::table("regions").order_by("id", SortOrder::Asc),
            ),
            (
                "browse_newest_items",
                SelectQuery::table("items")
                    .select(vec!["id"])
                    .order_by("id", SortOrder::Desc)
                    .limit(10),
            ),
            (
                "search_items_by_categories",
                SelectQuery::table("items")
                    .filter(Predicate::in_list("category", [1i64, 2]))
                    .select(vec!["id"])
                    .order_by("id", SortOrder::Asc)
                    .limit(ITEMS_PER_PAGE),
            ),
            (
                "next_id seed",
                SelectQuery::table("items").aggregate(Aggregate::Max("id".into())),
            ),
        ];
        for (name, q) in hot {
            let plan = db.plan_for(&q).unwrap();
            assert!(
                !matches!(plan.access, AccessPath::SeqScan),
                "{name} plans a SeqScan"
            );
        }
        // And the specific fast paths land where expected.
        let newest = SelectQuery::table("items")
            .select(vec!["id"])
            .order_by("id", SortOrder::Desc)
            .limit(10);
        assert!(matches!(
            db.plan_for(&newest).unwrap().access,
            AccessPath::IndexOrdered { .. }
        ));
        let multi = SelectQuery::table("items")
            .filter(Predicate::in_list("category", [1i64, 2]))
            .select(vec!["id"]);
        assert!(matches!(
            db.plan_for(&multi).unwrap().access,
            AccessPath::IndexIn { .. }
        ));
        let max = SelectQuery::table("items").aggregate(Aggregate::Max("id".into()));
        assert!(matches!(
            db.plan_for(&max).unwrap().access,
            AccessPath::IndexEndpoint { max: true, .. }
        ));
    }

    #[test]
    fn newest_and_multi_category_browse_return_items() {
        let (app, _db) = stack();
        let mut tx = app.begin_ro(Staleness::seconds(30)).unwrap();
        let newest = app.browse_newest_items(&mut tx, 5).unwrap();
        assert_eq!(newest.len(), 5);
        assert!(
            newest.windows(2).all(|w| w[0].id > w[1].id),
            "newest feed must be id-descending"
        );
        let multi = app.search_items_by_categories(&mut tx, &[1, 2]).unwrap();
        assert!(!multi.is_empty());
        assert!(multi.windows(2).all(|w| w[0].id < w[1].id));
        tx.commit().unwrap();
    }
}
