//! §5.4: the pincushion is on every transaction's critical path but performs
//! little work; the paper reports sub-0.2 ms responses. These benches measure
//! the registry operations themselves (the network round trip is modelled by
//! the harness cost model).

use criterion::{criterion_group, criterion_main, Criterion};
use pincushion::{Pincushion, PincushionConfig};
use txtypes::{SimClock, Staleness, Timestamp};

fn bench_pincushion(c: &mut Criterion) {
    let mut group = c.benchmark_group("pincushion");
    group.sample_size(50);

    group.bench_function("register", |b| {
        let clock = SimClock::new();
        let pc = Pincushion::new(PincushionConfig::default(), clock.clone());
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            pc.register(Timestamp(ts), clock.now());
        });
    });

    group.bench_function("fresh_pins_and_release", |b| {
        let clock = SimClock::new();
        let pc = Pincushion::new(PincushionConfig::default(), clock.clone());
        for ts in 0..64u64 {
            pc.register(Timestamp(ts), clock.now());
            clock.advance_micros(100_000);
        }
        b.iter(|| {
            let pins = pc.fresh_pins(Staleness::seconds(30));
            let timestamps: Vec<Timestamp> = pins.iter().map(|p| p.timestamp).collect();
            pc.release(&timestamps);
            pins.len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pincushion);
criterion_main!(benches);
