//! Explore the staleness/consistency trade-off (§2.2, §8.2): run the same
//! RUBiS workload at several staleness limits and watch the hit rate and the
//! miss breakdown change, then demonstrate using commit timestamps as a
//! causality bound so a user never sees time move backwards.
//!
//! Run with `cargo run --release --example staleness_explorer`.

use txcache_repro::harness::{run_experiment, DbKind, ExperimentConfig};
use txcache_repro::txtypes::Staleness;

fn main() {
    let base = ExperimentConfig {
        scale_factor: 0.005,
        requests: 1_200,
        warmup_requests: 600,
        ..ExperimentConfig::new(DbKind::InMemory)
    };

    println!("staleness   hit-rate   consistency-miss share");
    for secs in [1u64, 5, 15, 30, 60] {
        let result = run_experiment(&ExperimentConfig {
            staleness: Staleness::seconds(secs),
            ..base
        })
        .expect("experiment");
        let misses = result.cache_stats.misses().max(1);
        println!(
            "{:>6}s    {:>6.1}%    {:>6.1}%",
            secs,
            result.hit_rate * 100.0,
            result.cache_stats.consistency_misses as f64 / misses as f64 * 100.0
        );
    }

    println!(
        "\nHigher staleness limits keep invalidated entries useful for longer (higher hit\n\
         rate) but must match more data at the same timestamp, so the share of consistency\n\
         misses grows — exactly the trend of Figures 7 and 8 in the paper.\n"
    );

    println!(
        "Causality: an application can pass the timestamp returned by COMMIT as the next\n\
         transaction's staleness bound (§2.2) so a user who just placed a bid is guaranteed\n\
         to see it, while other users may still be served slightly stale cached pages."
    );
}
