//! Application-level objects returned by RUBiS cacheable functions.
//!
//! These are the "application computations that depend on database queries"
//! the paper argues are worth caching (§1): they bundle one or more query
//! results into the internal representation the page-rendering code consumes.

use serde::{Deserialize, Serialize};

/// A registered user, as shown on user-info pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserInfo {
    /// User id.
    pub id: i64,
    /// Unique nickname.
    pub nickname: String,
    /// Feedback rating.
    pub rating: i64,
    /// Account balance.
    pub balance: f64,
    /// Region id.
    pub region: i64,
}

/// An auction item with full details, as shown on item pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemDetails {
    /// Item id.
    pub id: i64,
    /// Item name.
    pub name: String,
    /// Item description.
    pub description: String,
    /// Seller's user id.
    pub seller: i64,
    /// Category id.
    pub category: i64,
    /// Starting price.
    pub initial_price: f64,
    /// Current highest price.
    pub current_price: f64,
    /// Number of bids placed.
    pub nb_of_bids: i64,
    /// Auction end date (abstract units).
    pub end_date: i64,
    /// Whether the item came from the `old_items` table.
    pub closed: bool,
}

/// A one-line item summary, as shown in search listings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemSummary {
    /// Item id.
    pub id: i64,
    /// Item name.
    pub name: String,
    /// Current highest price.
    pub current_price: f64,
    /// Number of bids placed.
    pub nb_of_bids: i64,
}

/// A single bid in an item's bid history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BidInfo {
    /// Bid id.
    pub id: i64,
    /// Bidding user.
    pub user_id: i64,
    /// Bid amount.
    pub amount: f64,
    /// Bid date (abstract units).
    pub date: i64,
}

/// A comment left on a user's profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommentInfo {
    /// Comment id.
    pub id: i64,
    /// Author.
    pub from_user: i64,
    /// Rating given.
    pub rating: i64,
    /// Comment text.
    pub text: String,
}

/// A rendered page: what the page-granularity cacheable functions return
/// (§7.1 caches "large portions of the generated HTML output").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderedPage {
    /// Page title.
    pub title: String,
    /// Pseudo-HTML body.
    pub body: String,
}

impl RenderedPage {
    /// Builds a page from a title and body.
    #[must_use]
    pub fn new(title: impl Into<String>, body: impl Into<String>) -> RenderedPage {
        RenderedPage {
            title: title.into(),
            body: body.into(),
        }
    }

    /// Size of the rendered page in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.title.len() + self.body.len()
    }

    /// Whether the page is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_page_helpers() {
        let p = RenderedPage::new("t", "body");
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert!(RenderedPage::new("", "").is_empty());
    }
}
